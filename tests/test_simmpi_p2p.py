"""Point-to-point messaging of the simulated cluster."""
import numpy as np
import pytest

from repro.simmpi import MachineModel, run_spmd


class TestBasicMessaging:
    def test_send_recv_pair(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(5.0), tag=3)
                return None
            return comm.recv(0, tag=3)

        res = run_spmd(2, prog)
        assert np.array_equal(res.results[1], np.arange(5.0))

    def test_payload_is_copied(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.ones(4)
                comm.send(1, data)
                data[:] = -1.0  # must not affect the message
                return None
            return comm.recv(0)

        res = run_spmd(2, prog)
        assert np.all(res.results[1] == 1.0)

    def test_tag_matching_order(self):
        """Messages match by (source, tag), not arrival order."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.array([1.0]), tag=10)
                comm.send(1, np.array([2.0]), tag=20)
                return None
            second = comm.recv(0, tag=20)
            first = comm.recv(0, tag=10)
            return (float(first[0]), float(second[0]))

        res = run_spmd(2, prog)
        assert res.results[1] == (1.0, 2.0)

    def test_fifo_per_source_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(1, np.array([float(i)]), tag=7)
                return None
            return [float(comm.recv(0, tag=7)[0]) for _ in range(5)]

        res = run_spmd(2, prog)
        assert res.results[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_sendrecv_ring(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(right, np.array([float(comm.rank)]), left)
            return float(got[0])

        res = run_spmd(4, prog)
        assert res.results == [3.0, 0.0, 1.0, 2.0]

    def test_nonblocking_overlap(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=1)
                comm.compute(1.0)  # overlaps the message flight
                return float(req.wait()[0])
            comm.send(0, np.array([42.0]), tag=1)
            return None

        res = run_spmd(2, prog)
        assert res.results[0] == 42.0
        # the message (tiny) arrived during the 1 s compute: no extra wait
        assert res.stats[0].p2p_time == pytest.approx(0.0, abs=1e-4)


class TestAccounting:
    def test_message_counters(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100))
            else:
                comm.recv(0)

        res = run_spmd(2, prog)
        assert res.stats[0].p2p_messages_sent == 1
        assert res.stats[0].p2p_bytes_sent == 800
        assert res.stats[1].p2p_messages_received == 1
        assert res.stats[1].p2p_bytes_received == 800

    def test_clock_advances_by_alpha_beta(self):
        machine = MachineModel(alpha=1e-3, beta=1e-6, seconds_per_point=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1000))
            else:
                comm.recv(0)

        res = run_spmd(2, prog, machine=machine)
        # receiver waits until alpha + beta * 8000 bytes
        assert res.clocks[1] == pytest.approx(1e-3 + 8e-3)
        # buffered sender pays only alpha
        assert res.clocks[0] == pytest.approx(1e-3)

    def test_blocking_wait_counts_synchronization(self):
        machine = MachineModel(alpha=1e-3, beta=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.compute(0.5)
                comm.send(1, np.zeros(4))
            else:
                comm.recv(0)

        res = run_spmd(2, prog, machine=machine)
        assert res.stats[1].synchronizations == 1
        assert res.stats[1].p2p_time == pytest.approx(0.5 + 1e-3)


class TestDeadlock:
    def test_recv_without_send_times_out(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv(0, tag=99)

        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog, timeout=0.3)
        assert "timed out" in str(exc_info.value)


class TestDeterminism:
    def test_clocks_reproducible(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            for _ in range(10):
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                comm.compute(float(rng.random()) * 1e-3)
                comm.sendrecv(right, rng.random(64), left)
            return comm.clock

        r1 = run_spmd(4, prog)
        r2 = run_spmd(4, prog)
        assert r1.clocks == r2.clocks


class TestNonblockingCompletion:
    """``Request.test`` / ``Comm.waitany``: physical claim, logical defer."""

    def test_test_claims_without_logical_effects(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(8.0), tag=7)
                return None
            import time as _t

            req = comm.irecv(0, tag=7)
            deadline = _t.monotonic() + 5.0
            while not req.test():
                if _t.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("message never arrived")
                _t.sleep(0.001)
            # physically claimed, logically untouched
            clock_before = comm.clock
            msgs_before = comm.stats.p2p_messages_received
            assert req.test()  # idempotent
            assert comm.clock == clock_before
            assert comm.stats.p2p_messages_received == msgs_before
            payload = req.wait()  # logical completion happens here
            assert comm.stats.p2p_messages_received == msgs_before + 1
            assert comm.clock > clock_before
            return payload

        res = run_spmd(2, prog)
        assert np.array_equal(res.results[1], np.arange(8.0))

    def test_test_false_before_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=1)
                assert not req.test()  # nothing sent yet on this stream
                comm.send(1, np.ones(2), tag=0)
                return req.wait()
            comm.recv(0, tag=0)
            comm.send(0, np.full(3, 9.0), tag=1)
            return None

        res = run_spmd(2, prog)
        assert np.array_equal(res.results[0], np.full(3, 9.0))

    def test_isend_request_tests_true(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(1, np.zeros(4))
                assert req.test()  # buffered send: complete at creation
                return None
            return comm.recv(0)

        run_spmd(2, prog)

    def test_waitany_returns_lowest_ready_index(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.array([0.5]), tag=2)
                comm.send(1, np.array([1.5]), tag=3)
                return None
            reqs = [comm.irecv(0, tag=2), comm.irecv(0, tag=3)]
            idx = comm.waitany(reqs)
            assert idx == 0  # both arrived; lowest index wins
            # waitany claims but does not complete
            msgs_before = comm.stats.p2p_messages_received
            a = reqs[0].wait()
            b = reqs[1].wait()
            assert comm.stats.p2p_messages_received == msgs_before + 2
            return float(a[0]) + float(b[0])

        res = run_spmd(2, prog)
        assert res.results[1] == 2.0

    def test_waitany_blocks_until_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=5)  # gate: rank1 is already inside waitany
                comm.send(1, np.array([4.0]), tag=6)
                return None
            req = comm.irecv(0, tag=6)
            gate = comm.isend(0, np.zeros(1), tag=5)
            idx = comm.waitany([req])
            gate.wait()
            assert idx == 0
            return float(req.wait()[0])

        res = run_spmd(2, prog)
        assert res.results[1] == 4.0

    def test_waitany_timeout_raises_deadlock(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(0, tag=9)  # never sent
                comm.waitany([req])
            return None

        with pytest.raises(Exception) as exc_info:
            run_spmd(2, prog, timeout=0.3)
        assert "timed out" in str(exc_info.value)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_polling_does_not_change_clocks(self, backend):
        """Fuzzed test() polling must leave logical clocks bit-identical."""

        def make(poll: bool):
            def prog(comm):
                rng = np.random.default_rng(123 + comm.rank)
                fuzz = np.random.default_rng(7 * comm.rank + 1)
                for _ in range(6):
                    right = (comm.rank + 1) % comm.size
                    left = (comm.rank - 1) % comm.size
                    req_out = comm.isend(right, rng.random(32))
                    req_in = comm.irecv(left)
                    comm.compute(float(rng.random()) * 1e-4)
                    if poll:
                        for _ in range(fuzz.integers(0, 4)):
                            req_in.test()
                    req_in.wait()
                    req_out.wait()
                return comm.clock

            return prog

        base = run_spmd(2, make(False), backend=backend)
        polled = run_spmd(2, make(True), backend=backend)
        assert base.clocks == polled.clocks
        for sb, sp in zip(base.stats, polled.stats):
            assert sb.p2p_time == sp.p2p_time
            assert sb.synchronizations == sp.synchronizations

    def test_waitany_drains_full_ring_on_process_backend(self):
        """A receiver parked in waitany must drain its own incoming ring
        (writer-drains-own-incoming), or a sender stalls forever on a
        link smaller than the payload."""

        def prog(comm):
            big = np.arange(65536, dtype=np.float64)  # 512 KiB payload
            if comm.rank == 0:
                comm.send(1, big, tag=1)  # blocks until rank 1 drains
                return None
            req = comm.irecv(0, tag=1)
            idx = comm.waitany([req])
            assert idx == 0
            return float(req.wait().sum())

        res = run_spmd(
            2, prog, backend="process", shm_link_bytes=64 * 1024, timeout=30
        )
        assert res.results[1] == float(np.arange(65536, dtype=np.float64).sum())
