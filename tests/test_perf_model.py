"""The projection model: shape claims of Figures 1, 6, 7 and 8."""
import pytest

from repro.grid.latlon import paper_grid
from repro.perf.model import (
    ALGORITHMS,
    Calibration,
    PAPER_PROC_SWEEP,
    PerformanceModel,
)


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(paper_grid())


class TestFigure1:
    def test_communication_dominates(self, model):
        """Figure 1's message: comm time dominates the dycore runtime
        for the original algorithm at scale."""
        for p in PAPER_PROC_SWEEP:
            t = model.timing("original-yz", p)
            assert t.comm_fraction > 0.5

    def test_comm_share_grows_with_p(self, model):
        f = [model.timing("original-yz", p).comm_fraction for p in PAPER_PROC_SWEEP]
        assert f == sorted(f)


class TestFigure6:
    def test_xy_collective_much_larger(self, model):
        """The Fourier-filter collective dwarfs the z-summation."""
        for p in PAPER_PROC_SWEEP:
            xy = model.timing("original-xy", p).collective_comm_time
            yz = model.timing("original-yz", p).collective_comm_time
            assert xy > 1.2 * yz

    def test_ca_collective_speedup(self, model):
        """~1.4x average vs the Y-Z original (one third of C removed)."""
        ratios = [
            model.timing("original-yz", p).collective_comm_time
            / model.timing("ca", p).collective_comm_time
            for p in PAPER_PROC_SWEEP
        ]
        avg = sum(ratios) / len(ratios)
        assert 1.25 < avg < 1.55


class TestFigure7:
    def test_xy_stencil_smallest_of_originals(self, model):
        """W_XY^stencil < W_YZ^stencil since n_x >> n_y, n_z (Sec. 5.2)."""
        for p in PAPER_PROC_SWEEP:
            xy = model.timing("original-xy", p).stencil_comm_time
            yz = model.timing("original-yz", p).stencil_comm_time
            assert xy < yz

    def test_ca_stencil_speedup_3_to_6(self, model):
        """3x-6x (avg 3.9) vs the Y-Z original."""
        ratios = [
            model.timing("original-yz", p).stencil_comm_time
            / model.timing("ca", p).stencil_comm_time
            for p in PAPER_PROC_SWEEP
        ]
        assert all(2.5 < r < 6.5 for r in ratios)
        avg = sum(ratios) / len(ratios)
        assert 3.3 < avg < 4.5

    def test_paper_anchor_yz_1024(self, model):
        """17,400 s for the Y-Z original on 1024 cores (Sec. 5.2)."""
        t = model.timing("original-yz", 1024).stencil_comm_time
        assert t == pytest.approx(17_400, rel=0.25)


class TestFigure8:
    def test_ca_always_fastest(self, model):
        for p in PAPER_PROC_SWEEP:
            totals = {a: model.timing(a, p).total_time for a in ALGORITHMS}
            assert totals["ca"] < totals["original-yz"]
            assert totals["ca"] < totals["original-xy"]

    def test_54_percent_at_512(self, model):
        """'reduces the total runtime by 54% at most, when p = 512'."""
        reductions = {
            p: 1.0
            - model.timing("ca", p).total_time
            / model.timing("original-xy", p).total_time
            for p in PAPER_PROC_SWEEP
        }
        assert reductions[512] == pytest.approx(0.54, abs=0.05)
        # "at most 54%": no process count wildly exceeds the paper's max,
        # and the benefit declines toward the scaling limit
        assert max(reductions.values()) < 0.60
        assert reductions[1024] < reductions[512]

    def test_savings_anchors_1024(self, model):
        """~113,500 s saved vs X-Y and ~46,300 s vs Y-Z on 1024 cores."""
        ca = model.timing("ca", 1024).total_time
        xy = model.timing("original-xy", 1024).total_time
        yz = model.timing("original-yz", 1024).total_time
        assert xy - ca == pytest.approx(113_500, rel=0.15)
        assert yz - ca == pytest.approx(46_300, rel=0.15)


class TestModelMechanics:
    def test_ten_model_years_of_steps(self, model):
        assert model.nsteps == pytest.approx(
            10 * 365 * 86400 / model.PAPER_DT, rel=1e-6
        )

    def test_unknown_algorithm_raises(self, model):
        with pytest.raises(ValueError):
            model.timing("bogus", 128)

    def test_sweep_shape(self, model):
        out = model.sweep(["ca"], [128, 256])
        assert len(out["ca"]) == 2
        assert out["ca"][0].nprocs == 128

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            Calibration(alpha_msg=-1.0)

    def test_sync_overhead_grows(self):
        cal = Calibration()
        assert cal.sync_overhead(1024) > cal.sync_overhead(128)

    def test_trapezoid_redundancy_shrinks_with_block_size(self):
        pm_small = PerformanceModel(paper_grid())
        d_big = pm_small.decomposition("ca", 128)
        d_tiny = pm_small.decomposition("ca", 1024)
        block_big = pm_small._block_points(d_big)
        block_tiny = pm_small._block_points(d_tiny)
        ratio_big = pm_small._ca_trapezoid_points(d_big, 9) / block_big
        ratio_tiny = pm_small._ca_trapezoid_points(d_tiny, 9) / block_tiny
        assert ratio_tiny > ratio_big > 1.0
