"""The 3-D decomposition baseline in the projection model."""
import pytest

from repro.grid.latlon import paper_grid
from repro.perf.model import PAPER_PROC_SWEEP, PerformanceModel


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(paper_grid())


class Test3DBaseline:
    def test_decomposition_has_all_axes_split(self, model):
        d = model.decomposition("original-3d", 256)
        assert d.kind == "3d"
        assert d.px > 1 and d.py > 1 and d.pz > 1
        assert d.nranks == 256

    def test_both_collectives_live(self, model):
        """3-D pays for the filter x-collective AND the z summation —
        its collective time exceeds both 2-D variants."""
        for p in PAPER_PROC_SWEEP:
            c3 = model.timing("original-3d", p).collective_comm_time
            cxy = model.timing("original-xy", p).collective_comm_time
            cyz = model.timing("original-yz", p).collective_comm_time
            assert c3 > cxy
            assert c3 > cyz

    def test_3d_least_efficient_total(self, model):
        """Sec. 2.2: 2-D decompositions 'are always more efficient than
        3-dimensional decomposition in real-world applications'."""
        for p in PAPER_PROC_SWEEP:
            t3 = model.timing("original-3d", p).total_time
            assert t3 > model.timing("original-yz", p).total_time
            assert t3 > model.timing("ca", p).total_time

    def test_more_neighbours_in_stencil(self, model):
        """26-neighbour exchanges make the 3-D stencil comm the priciest
        original."""
        s3 = model.timing("original-3d", 512).stencil_comm_time
        sxy = model.timing("original-xy", 512).stencil_comm_time
        assert s3 > sxy
