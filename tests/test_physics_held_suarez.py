"""The Held-Suarez forcing and initial conditions."""
import numpy as np
import pytest

from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.physics import (
    HeldSuarezForcing,
    balanced_random_state,
    perturbed_rest_state,
    rest_state,
)
from repro.physics.held_suarez import DAY


@pytest.fixture
def geom(small_grid):
    sigma = SigmaLevels.uniform(small_grid.nz)
    return WorkingGeometry.build_global(small_grid, sigma, gy=0, gz=0)


@pytest.fixture
def forcing():
    return HeldSuarezForcing()


class TestEquilibriumProfile:
    def test_warm_equator_cold_poles(self, geom, forcing):
        ps = np.full(geom.shape2d, 1.0e5)
        t_eq = forcing.equilibrium_temperature(geom, ps)
        surf = t_eq[-1]  # lowest level
        eq_row = geom.shape2d[0] // 2
        assert surf[eq_row, 0] > surf[0, 0]
        assert surf[eq_row, 0] > surf[-1, 0]

    def test_equator_pole_contrast(self, geom, forcing):
        ps = np.full(geom.shape2d, 1.0e5)
        t_eq = forcing.equilibrium_temperature(geom, ps)
        surf = t_eq[-1]
        contrast = surf.max() - surf.min()
        assert 40.0 < contrast < 70.0  # dT_y = 60 K, floored at 200 K

    def test_temperature_floor(self, geom, forcing):
        ps = np.full(geom.shape2d, 1.0e5)
        t_eq = forcing.equilibrium_temperature(geom, ps)
        assert np.all(t_eq >= forcing.t_floor)

    def test_stratosphere_isothermal(self, geom, forcing):
        ps = np.full(geom.shape2d, 1.0e5)
        t_eq = forcing.equilibrium_temperature(geom, ps)
        # top level should be at the floor everywhere (sigma ~ 0.08)
        assert np.allclose(t_eq[0], forcing.t_floor)


class TestRates:
    def test_drag_only_in_boundary_layer(self, geom, forcing):
        k_v = forcing.drag_rate(geom)
        sigma = geom.sigma_mid
        assert np.all(k_v[sigma < forcing.sigma_b] == 0.0)
        assert k_v.ravel()[-1] > 0.0

    def test_thermal_relaxation_bounds(self, geom, forcing):
        k_t = forcing.relaxation_rate(geom)
        assert np.all(k_t >= forcing.k_a - 1e-15)
        assert np.all(k_t <= forcing.k_s + 1e-15)

    def test_tropical_boundary_layer_fastest(self, geom, forcing):
        k_t = forcing.relaxation_rate(geom)
        eq = geom.shape2d[0] // 2
        assert k_t[-1, eq, 0] > k_t[-1, 0, 0]
        assert k_t[-1, eq, 0] > k_t[0, eq, 0]


class TestApplication:
    def test_drag_decays_winds(self, small_grid, geom, forcing, rng):
        state = balanced_random_state(small_grid, rng, wind_amplitude=10.0)
        u_surf_before = np.abs(state.U[-1]).max()
        forcing(state, geom, dt=DAY)
        assert np.abs(state.U[-1]).max() < u_surf_before

    def test_top_winds_untouched(self, small_grid, geom, forcing, rng):
        state = balanced_random_state(small_grid, rng, wind_amplitude=10.0)
        top_before = state.U[0].copy()
        forcing(state, geom, dt=DAY)
        assert np.array_equal(state.U[0], top_before)

    def test_relaxes_toward_equilibrium(self, small_grid, geom, forcing):
        state = rest_state(small_grid)
        phi_before = np.abs(state.Phi).max()
        # k_a = 1/40 days: 400 days is ten e-folding times
        forcing(state, geom, dt=400.0 * DAY)
        assert np.abs(state.Phi).max() > phi_before
        # a second long application changes (almost) nothing
        snapshot = state.Phi.copy()
        forcing(state, geom, dt=400.0 * DAY)
        residual = np.abs(state.Phi - snapshot).max()
        assert residual < 1e-3 * np.abs(state.Phi).max()

    def test_exact_exponential_relaxation(self, small_grid, geom, forcing):
        """Two half-steps == one full step (exact integrator property)."""
        s1 = perturbed_rest_state(small_grid, amplitude_k=3.0)
        s2 = s1.copy()
        forcing(s1, geom, dt=1000.0)
        forcing(s2, geom, dt=500.0)
        forcing(s2, geom, dt=500.0)
        assert s1.allclose(s2, rtol=1e-10, atol=1e-12)


class TestInitialConditions:
    def test_rest_state_zero(self, small_grid):
        s = rest_state(small_grid)
        assert s.max_abs() == 0.0

    def test_perturbation_localized(self, small_grid):
        s = perturbed_rest_state(
            small_grid, amplitude_k=1.0, center_lat_deg=40.0,
            center_lon_deg=90.0, width_deg=10.0,
        )
        assert s.isfinite()
        peak = np.unravel_index(np.abs(s.Phi).argmax(), s.Phi.shape)
        lat = 90.0 - np.degrees(small_grid.theta_c[peak[1]])
        lon = np.degrees(small_grid.lon[peak[2]])
        assert abs(lat - 40.0) < 15.0
        assert abs(lon - 90.0) < 20.0

    def test_random_state_pole_rows_zonal(self, small_grid, rng):
        s = balanced_random_state(small_grid, rng)
        assert np.ptp(s.U[:, 0, :], axis=-1).max() == pytest.approx(0.0)
        assert np.all(s.V[:, -1, :] == 0.0)
