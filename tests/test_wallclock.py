"""Wall-clock benchmark harness: schema, IO and the regression gate."""
import json

import pytest

from repro.perf.wallclock import (
    MeshSpec,
    SCHEMA_VERSION,
    bench_serial,
    bench_transport_overhead,
    case_key,
    compare_reports,
    load_report,
    transport_overhead_violations,
    write_report,
)

MICRO = MeshSpec("micro", 16, 8, 3, nsteps=1)


def _report(cases):
    return {"schema_version": SCHEMA_VERSION, "quick": True,
            "bench_seed": 0, "machine": {}, "cases": cases}


def _case(steps_per_sec, kind="serial_step", mesh="small", **extra):
    return {"kind": kind, "mesh": mesh, "steps_per_sec": steps_per_sec,
            **extra}


class TestRegressionGate:
    def test_no_regression_within_tolerance(self):
        cur = _report([_case(9.0)])
        base = _report([_case(10.0)])
        assert compare_reports(cur, base, tolerance=0.2) == []

    def test_regression_beyond_tolerance_reported(self):
        cur = _report([_case(7.0)])
        base = _report([_case(10.0)])
        out = compare_reports(cur, base, tolerance=0.2)
        assert len(out) == 1 and "serial_step:small" in out[0]

    def test_speedup_never_flags(self):
        cur = _report([_case(20.0)])
        base = _report([_case(10.0)])
        assert compare_reports(cur, base) == []

    def test_unmatched_cases_ignored(self):
        cur = _report([_case(1.0, mesh="new-mesh")])
        base = _report([_case(10.0)])
        assert compare_reports(cur, base) == []

    def test_distributed_cases_keyed_by_algorithm(self):
        a = _case(5.0, kind="distributed_step", algorithm="ca", nprocs=2)
        b = _case(5.0, kind="distributed_step", algorithm="original-yz",
                  nprocs=2)
        assert case_key(a) != case_key(b)


class TestTransportOverheadGate:
    def _case(self, frac):
        return {"kind": "transport_overhead", "mesh": "small",
                "algorithm": "original-yz", "nprocs": 2,
                "logical_overhead_frac": frac}

    def test_within_limit_passes(self):
        report = _report([self._case(0.04)])
        assert transport_overhead_violations(report, limit=0.05) == []

    def test_over_limit_flagged(self):
        report = _report([self._case(0.12)])
        out = transport_overhead_violations(report, limit=0.05)
        assert len(out) == 1
        assert "transport_overhead:small" in out[0]
        assert "12.00%" in out[0]

    def test_other_kinds_ignored(self):
        report = _report([_case(10.0)])
        assert transport_overhead_violations(report) == []


class TestReportIO:
    def test_round_trip(self, tmp_path):
        report = _report([_case(10.0)])
        path = write_report(report, tmp_path / "BENCH_test.json")
        assert load_report(path) == report

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999, "cases": []}))
        with pytest.raises(ValueError, match="schema"):
            load_report(path)


class TestExecutedBench:
    def test_serial_case_record(self):
        case = bench_serial(MICRO)
        assert case["kind"] == "serial_step"
        assert case["seed_ms_per_step"] > 0
        assert case["ws_ms_per_step"] > 0
        assert case["steps_per_sec"] == pytest.approx(
            1e3 / case["ws_ms_per_step"]
        )
        assert case["allocations"]["reuses"] > 0

    def test_transport_overhead_case_is_free_of_logical_cost(self):
        """On a clean network the reliable transport must not move the
        simulated clocks at all — the overhead gate rides on this."""
        case = bench_transport_overhead(MICRO, nsteps=1)
        assert case["kind"] == "transport_overhead"
        assert case["plain_makespan"] > 0
        assert case["logical_overhead_frac"] == 0.0
        assert transport_overhead_violations(_report([case])) == []


def test_committed_baseline_is_loadable():
    """The regression gate's reference artifact stays valid."""
    from pathlib import Path

    base = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "baseline" / "BENCH_baseline.json"
    )
    report = load_report(base)
    kinds = {c["kind"] for c in report["cases"]}
    assert {
        "serial_step", "kernels", "distributed_step", "parallel_scaling"
    } <= kinds
    # the workspace claim: >= 1.3x serial step throughput on the medium mesh
    medium = [
        c for c in report["cases"]
        if c["kind"] == "serial_step" and c["mesh"] == "medium"
    ]
    assert medium and medium[0]["speedup"] >= 1.3
    # the multicore claim is carried by the gated CA scaling case; the
    # gate itself only binds on hosts with the cores (see gate_enforced)
    gated = [
        c for c in report["cases"]
        if c["kind"] == "parallel_scaling" and c.get("gate_beats_serial")
    ]
    assert gated and gated[0]["algorithm"] == "ca"
    assert gated[0]["nprocs"] == 4 and gated[0]["mesh"] == "medium"
    assert gated[0]["cpu_count"] >= 1
