"""The C operator: vertical-integral diagnostics."""
import numpy as np
import pytest

from repro import constants
from repro.grid.decomposition import BlockExtent
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.operators.vertical import (
    compute_vertical_diagnostics,
    divergence_dp,
)
from repro.physics import balanced_random_state
from repro.state.transforms import p_factor


@pytest.fixture
def geom(small_grid):
    sigma = SigmaLevels.uniform(small_grid.nz)
    return WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)


def padded_state(state, geom):
    """Embed an interior state into ghost-extended working arrays."""
    from repro.core.tendencies import TendencyEngine
    from repro.constants import ModelParameters

    eng = TendencyEngine(geom, ModelParameters())
    from repro.state.variables import ModelState

    w = ModelState.zeros(geom.shape3d)
    gy = geom.gy
    for name, arr in state.fields().items():
        getattr(w, name)[..., gy:-gy, :] = arr
    eng.fill_physical_ghosts(w)
    return w


class TestDivergence:
    def test_zero_for_rest(self, geom):
        nz_w, ny_w, nx_w = geom.shape3d
        U = np.zeros((nz_w, ny_w, nx_w))
        V = np.zeros_like(U)
        p_fac = np.full((ny_w, nx_w), 0.9)
        assert np.allclose(divergence_dp(U, V, p_fac, geom), 0.0)

    def test_mass_conservation(self, small_grid, geom, rng):
        """The area integral of D(P) vanishes (flux form telescopes)."""
        state = balanced_random_state(small_grid, rng)
        w = padded_state(state, geom)
        p_fac = p_factor(w.psa + constants.P_REFERENCE)
        dp = divergence_dp(w.U, w.V, p_fac, geom)
        gy = geom.gy
        area = small_grid.cell_area()[:, None] / small_grid.nx
        integral = float(np.sum(dp[:, gy:-gy, :] * area[None]))
        scale = float(np.sum(np.abs(dp[:, gy:-gy, :]) * area[None]))
        assert abs(integral) < 1e-10 * max(scale, 1e-30)


class TestDiagnostics:
    def test_boundary_interfaces_vanish(self, small_grid, geom, rng):
        state = balanced_random_state(small_grid, rng)
        w = padded_state(state, geom)
        vd = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
        assert np.allclose(vd.pw_iface[0], 0.0, atol=1e-18)
        assert np.allclose(vd.pw_iface[-1], 0.0, atol=1e-14)
        assert np.allclose(vd.sdot_iface[0], 0.0, atol=1e-18)
        assert np.allclose(vd.sdot_iface[-1], 0.0, atol=1e-14)

    def test_column_sum_matches_manual(self, small_grid, geom, rng):
        state = balanced_random_state(small_grid, rng)
        w = padded_state(state, geom)
        vd = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
        dsig = geom.dsigma[:, None, None]
        manual = np.sum(dsig * vd.div_p, axis=0)
        assert np.allclose(vd.column_sum, manual, rtol=1e-12)

    def test_phi_prime_zero_for_zero_phi(self, small_grid, geom, rng):
        state = balanced_random_state(small_grid, rng)
        state.Phi[:] = 0.0
        w = padded_state(state, geom)
        vd = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
        assert np.allclose(vd.phi_prime, 0.0)

    def test_phi_prime_increases_upward_for_warm_column(self, small_grid, geom):
        """A uniformly warm anomaly lifts geopotential aloft."""
        from repro.state.variables import ModelState

        state = ModelState.zeros(small_grid.shape3d)
        state.Phi[:] = 1.0
        w = padded_state(state, geom)
        vd = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
        gy = geom.gy
        col = vd.phi_prime[:, gy + 3, 5]
        assert np.all(np.diff(col) < 0)  # k grows downward -> phi' decreases
        assert col[-1] > 0  # half-level centring leaves a positive surface value

    def test_distributed_gather_matches_serial(self, small_grid, rng):
        """Chunked z columns + gather hook == full-column computation.

        Simulates two z-ranks: each builds its ghost-extended local block,
        contributions are collected into the full-column stack (what the
        z allgather produces), and each half's diagnostics must equal the
        serial reference on its owned levels.
        """
        sigma = SigmaLevels.uniform(small_grid.nz)
        state = balanced_random_state(small_grid, rng)
        serial_geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
        w = padded_state(state, serial_geom)
        vd_ref = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, serial_geom)

        nz = small_grid.nz
        halves = [(0, nz // 2), (nz // 2, nz)]

        def local_block(full: np.ndarray, geom: WorkingGeometry) -> np.ndarray:
            """Scatter a global working field into one z-block + ghosts."""
            gz, z0, z1 = geom.gz, geom.extent.z0, geom.extent.z1
            block = np.zeros(geom.shape3d)
            src = full[max(0, z0 - gz): min(nz, z1 + gz)]
            off = gz - (z0 - max(0, z0 - gz))
            block[off: off + src.shape[0]] = src
            if z0 - gz < 0:
                block[0] = block[1]
            if z1 + gz > nz:
                block[-1] = block[-2]
            return block

        geoms, locals_ = [], []
        for z0, z1 in halves:
            ext = BlockExtent(0, small_grid.nx, 0, small_grid.ny, z0, z1)
            geom = WorkingGeometry.build(small_grid, sigma, ext, gy=2, gz=1)
            geoms.append(geom)
            locals_.append({n: local_block(getattr(w, n), geom)
                            for n in ("U", "V", "Phi")})

        # assemble the full-column contribution stack (= the z allgather)
        p_fac = p_factor(w.psa + constants.P_REFERENCE)
        stacks = []
        for geom, loc in zip(geoms, locals_):
            gz, nz_own = geom.gz, geom.extent.nz
            dp = divergence_dp(loc["U"], loc["V"], p_fac, geom)
            owned = slice(gz, gz + nz_own)
            dsig = geom.lev3(geom.dsigma[owned])
            sig = geom.lev3(geom.sigma_mid[owned])
            stacks.append(np.stack(
                [dsig * dp[owned], (dsig / sig) * loc["Phi"][owned]]
            ))
        full_stack = np.concatenate(stacks, axis=1)

        for (z0, z1), geom, loc in zip(halves, geoms, locals_):
            vd = compute_vertical_diagnostics(
                loc["U"], loc["V"], loc["Phi"], w.psa, geom,
                gather=lambda s: full_stack,
            )
            gz = geom.gz
            own = slice(gz, gz + (z1 - z0))
            assert np.allclose(
                vd.phi_prime[own], vd_ref.phi_prime[z0:z1], rtol=1e-12
            )
            assert np.allclose(vd.column_sum, vd_ref.column_sum, rtol=1e-12)
            assert np.allclose(
                vd.pw_iface[gz: gz + (z1 - z0) + 1],
                vd_ref.pw_iface[z0: z1 + 1],
                rtol=1e-12, atol=1e-15,
            )
