"""The SPMD launcher and statistics plumbing."""
import numpy as np
import pytest

from repro.simmpi import SpmdError, run_spmd
from repro.simmpi.stats import CommStats


class TestLauncher:
    def test_results_ordered_by_rank(self):
        res = run_spmd(5, lambda comm: comm.rank * 10)
        assert res.results == [0, 10, 20, 30, 40]
        assert res.nranks == 5

    def test_single_rank_fast_path(self):
        res = run_spmd(1, lambda comm: comm.size)
        assert res.results == [1]

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_exception_carries_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("boom on two")
            # others still join a barrier-free return path
            return comm.rank

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(4, prog, timeout=2.0)
        assert 2 in exc_info.value.failures
        assert "boom on two" in exc_info.value.failures[2]

    def test_makespan_is_max_clock(self):
        def prog(comm):
            comm.compute(0.1 * comm.rank)

        res = run_spmd(3, prog)
        assert res.makespan == pytest.approx(0.2)


class TestStats:
    def test_critical_stats_is_max(self):
        def prog(comm):
            comm.compute(float(comm.rank))
            if comm.rank == 0:
                comm.send(1, np.zeros(10))
            elif comm.rank == 1:
                comm.recv(0)

        res = run_spmd(3, prog)
        crit = res.critical_stats()
        assert crit.compute_time == pytest.approx(2.0)
        assert crit.p2p_messages_sent == 1

    def test_tagged_time_merge(self):
        a = CommStats()
        a.add_tagged("x", 1.0)
        b = CommStats()
        b.add_tagged("x", 3.0)
        b.add_tagged("y", 2.0)
        merged = a.merge_max([b])
        assert merged.tagged_time == {"x": 3.0, "y": 2.0}

    def test_comm_time_sum(self):
        s = CommStats(p2p_time=1.5, collective_time=2.5, compute_time=1.0)
        assert s.comm_time == 4.0
        assert s.total_time == 5.0
