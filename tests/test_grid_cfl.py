"""CFL and pole-clustering diagnostics."""
import pytest

from repro.grid.cfl import cfl_report, max_stable_dt, polar_clustering_ratio
from repro.grid.latlon import LatLonGrid, paper_grid


class TestClustering:
    def test_ratio_grows_with_resolution(self):
        coarse = LatLonGrid(nx=32, ny=16, nz=4)
        fine = LatLonGrid(nx=128, ny=64, nz=4)
        assert polar_clustering_ratio(fine) > polar_clustering_ratio(coarse)

    def test_paper_grid_severe(self):
        # at 0.5 deg the polar circle is >100x shorter than the equator
        assert polar_clustering_ratio(paper_grid()) > 100


class TestCflReport:
    def test_polar_restriction(self, small_grid):
        r = cfl_report(small_grid, dt=300.0)
        assert r.cfl_zonal_worst > r.cfl_zonal_equator
        assert r.min_dx < r.max_dx

    def test_filter_rescues_time_step(self):
        g = paper_grid()
        dt = max_stable_dt(g, filtered=True)
        r = cfl_report(g, dt)
        assert not r.stable_unfiltered  # would violate polar CFL
        assert r.stable_filtered

    def test_rejects_bad_dt(self, small_grid):
        with pytest.raises(ValueError):
            cfl_report(small_grid, dt=0.0)

    def test_unfiltered_dt_much_smaller(self):
        g = paper_grid()
        assert max_stable_dt(g, filtered=False) < max_stable_dt(g, filtered=True) / 50
