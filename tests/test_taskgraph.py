"""The task-graph executor: bit-identity, determinism, and overlap.

The contract under test (see ``docs/taskgraph.md``): running a rank
program with ``executor="taskgraph"`` must produce *exactly* the sync
executor's trajectory (``==``, not allclose) and deterministic logical
clocks on every backend, under arbitrary fuzzed poll interleavings —
while genuinely executing inner-block compute inside open communication
windows.
"""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.driver import DynamicalCore
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState

#: py <= 2 splits on this grid; the original program at py = 4 degenerates
M1_GRID = LatLonGrid(nx=32, ny=16, nz=8)
#: tall enough for real splits (and CA ghost budgets) at py = 4
TALL_GRID = LatLonGrid(nx=32, ny=32, nz=8)
M1 = ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)
M3_GRID = LatLonGrid(nx=16, ny=48, nz=8)
M3 = ModelParameters(dt_adaptation=60.0, dt_advection=180.0, m_iterations=3)

PROGRAMS = {"original-yz": original_rank_program, "ca": ca_rank_program}


def gather(decomp, results) -> ModelState:
    blocks = [r.state for r in results]
    return ModelState(
        U=decomp.gather([b.U for b in blocks]),
        V=decomp.gather([b.V for b in blocks]),
        Phi=decomp.gather([b.Phi for b in blocks]),
        psa=decomp.gather([b.psa for b in blocks]),
    )


def exactly_equal(a: ModelState, b: ModelState) -> bool:
    return all(
        np.array_equal(getattr(a, n), getattr(b, n))
        for n in ("U", "V", "Phi", "psa")
    )


def run_one(algorithm, grid, params, py, nsteps=2, *, executor="sync",
            backend="thread", forcing=None, fuzz=None):
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, py, 1)
    cfg = DistributedConfig(
        grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        forcing=forcing, executor=executor, taskgraph_fuzz_seed=fuzz,
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    res = run_spmd(
        decomp.nranks, PROGRAMS[algorithm], cfg, state0, backend=backend
    )
    return gather(decomp, res.results), res


class TestBitIdentity:
    """taskgraph trajectories == sync trajectories, rank for rank."""

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    @pytest.mark.parametrize("py", [1, 2, 4])
    def test_thread_backend(self, algorithm, py):
        grid = TALL_GRID if py == 4 else M1_GRID
        sync, _ = run_one(algorithm, grid, M1, py,
                          forcing=HeldSuarezForcing())
        tg, res = run_one(algorithm, grid, M1, py, executor="taskgraph",
                          forcing=HeldSuarezForcing())
        assert exactly_equal(sync, tg)
        assert res.results[0].overlap is not None
        assert res.results[0].overlap["windows"] > 0

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    @pytest.mark.parametrize("py", [1, 2, 4])
    def test_process_backend(self, algorithm, py):
        grid = TALL_GRID if py == 4 else M1_GRID
        sync, _ = run_one(algorithm, grid, M1, py, backend="process")
        tg, _ = run_one(algorithm, grid, M1, py, executor="taskgraph",
                        backend="process")
        assert exactly_equal(sync, tg)

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_multi_iteration_adaptation(self, algorithm):
        """M = 3: bundle exchanges (CA) / repeated refreshes (original)."""
        sync, _ = run_one(algorithm, M3_GRID, M3, 2)
        tg, _ = run_one(algorithm, M3_GRID, M3, 2, executor="taskgraph")
        assert exactly_equal(sync, tg)

    def test_degenerate_block_runs_plain_graph(self):
        """Blocks too small to split run an all-synchronous-shaped graph
        (zero windows) and still match the sync executor exactly."""
        sync, _ = run_one("original-yz", M1_GRID, M1, 4)
        tg, res = run_one("original-yz", M1_GRID, M1, 4,
                          executor="taskgraph")
        assert exactly_equal(sync, tg)
        assert all(r.overlap["windows"] == 0 for r in res.results)


class TestDeterminism:
    """Fuzzed poll interleavings cannot reach numerics or logical clocks."""

    def clocks(self, res):
        return [
            (
                round(s.compute_time, 12),
                round(s.p2p_time, 12),
                round(s.collective_time, 12),
                s.p2p_messages_sent,
                s.collective_ops,
            )
            for s in res.stats
        ]

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_fuzzed_polling_is_invisible(self, algorithm):
        base_state, base_res = run_one(
            algorithm, M1_GRID, M1, 2, executor="taskgraph"
        )
        for seed in (0, 1, 2):
            state, res = run_one(
                algorithm, M1_GRID, M1, 2, executor="taskgraph", fuzz=seed
            )
            assert exactly_equal(base_state, state)
            assert res.makespan == base_res.makespan
            assert self.clocks(res) == self.clocks(base_res)
            assert [r.exchanges for r in res.results] == [
                r.exchanges for r in base_res.results
            ]

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_clocks_identical_across_backends(self, algorithm):
        _, thread = run_one(algorithm, M1_GRID, M1, 2, executor="taskgraph")
        _, proc = run_one(algorithm, M1_GRID, M1, 2, executor="taskgraph",
                          backend="process")
        assert proc.makespan == thread.makespan
        assert self.clocks(proc) == self.clocks(thread)

    def test_serial_rank_matches_itself_under_fuzz(self):
        """py = 1: no messages at all, the graph still runs identically."""
        a, _ = run_one("ca", M1_GRID, M1, 2, executor="taskgraph", fuzz=5)
        b, _ = run_one("ca", M1_GRID, M1, 2, executor="taskgraph", fuzz=11)
        assert exactly_equal(a, b)


class TestOverlapObservability:
    def test_overlap_metrics_surface_in_result(self):
        _, res = run_one("ca", M1_GRID, M1, 2, executor="taskgraph")
        ov = res.results[0].overlap
        assert ov["tasks"] > 0
        assert ov["windows"] > 0
        assert ov["window_seconds"] >= ov["overlap_seconds"] >= 0.0
        assert 0.0 <= ov["overlap_fraction"] <= 1.0

    def test_sync_executor_reports_no_overlap(self):
        _, res = run_one("ca", M1_GRID, M1, 2)
        assert all(r.overlap is None for r in res.results)

    def test_trace_shows_compute_inside_comm_window(self):
        """The Chrome-trace claim: an inner compute span starts after the
        post returns and ends before the wait begins, on the same rank."""
        grid, params = M1_GRID, M1
        s0 = perturbed_rest_state(grid, amplitude_k=2.0)
        core = DynamicalCore(
            grid, algorithm="ca", nprocs=2, params=params,
            executor="taskgraph", observe=True,
        )
        core.run(s0, 2)
        spans = core.observation.tracer.spans
        posts = [s for s in spans if s.name.startswith("tg:post-")]
        waits = {
            (s.rank, s.name.removeprefix("tg:wait-")): s
            for s in spans
            if s.name.startswith("tg:wait-")
        }
        assert posts and waits
        inner = [s for s in spans if s.cat == "taskgraph"]
        found = False
        for p in posts:
            w = waits.get((p.rank, p.name.removeprefix("tg:post-")))
            if w is None:
                continue
            for s in inner:
                if (s.rank == p.rank
                        and s.t_start >= p.t_end
                        and s.t_end <= w.t_start):
                    found = True
        assert found, "no compute span inside any post->wait window"
        # and the wait spans agree: some window saw real overlapped work
        assert any(
            s.args and s.args.get("overlap_s", 0.0) > 0.0 for s in waits.values()
        )

    def test_driver_absorbs_overlap_metrics(self):
        grid, params = M1_GRID, M1
        s0 = perturbed_rest_state(grid, amplitude_k=2.0)
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=2, params=params,
            executor="taskgraph", observe=True,
        )
        _, diag = core.run(s0, 2)
        assert diag.overlap_windows > 0
        assert diag.overlap_seconds >= 0.0
        text = core.observation.registry.to_prometheus_text()
        assert "taskgraph_windows_total" in text
        assert "taskgraph_overlap_seconds_total" in text


class TestConfigSurface:
    def test_unknown_executor_rejected(self):
        decomp = Decomposition(32, 16, 8, 1, 1, 1)
        cfg = DistributedConfig(
            grid=M1_GRID, decomp=decomp, params=M1, nsteps=1,
            executor="fancy",
        )
        with pytest.raises(ValueError, match="executor"):
            cfg.validate_c_method()
        with pytest.raises(ValueError, match="executor"):
            DynamicalCore(M1_GRID, algorithm="ca", nprocs=1, params=M1,
                          executor="fancy")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "taskgraph")
        core = DynamicalCore(M1_GRID, algorithm="ca", nprocs=1, params=M1)
        assert core.config.executor == "taskgraph"
        monkeypatch.delenv("REPRO_EXECUTOR")
        core = DynamicalCore(M1_GRID, algorithm="ca", nprocs=1, params=M1)
        assert core.config.executor == "sync"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "taskgraph")
        core = DynamicalCore(M1_GRID, algorithm="ca", nprocs=1, params=M1,
                             executor="sync")
        assert core.config.executor == "sync"


class TestResilienceUnderTaskgraph:
    def test_chaos_run_is_bit_identical_to_sync_reference(self, tmp_path):
        """Link faults + one crash under the taskgraph executor: the
        deterministic fault schedule (keyed to comm-call counts the
        polling must not perturb) recovers to the sync fault-free state."""
        from repro.core.resilience import ResilienceConfig
        from repro.simmpi import CrashSpec, FaultPlan, LinkFault

        grid, params = M1_GRID, M1
        s0 = perturbed_rest_state(grid, amplitude_k=2.0)
        ref_core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=4, params=params,
        )
        ref, _ = ref_core.run(s0, 3)

        chaos = FaultPlan(
            seed=7,
            crashes=(CrashSpec(rank=1, at_attempt=2, at_call=5),),
            link_faults=(LinkFault(
                drop_probability=0.05, corrupt_probability=0.05,
            ),),
        )
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=4, params=params,
            executor="taskgraph",
        )
        recovered, _, report = core.run_resilient(
            s0, 3,
            ResilienceConfig(
                checkpoint_dir=tmp_path / "tg-chaos",
                checkpoint_interval=1,
                faults=chaos,
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts >= 1


class TestRowSlabUnit:
    def _geom(self, grid=M1_GRID, gy=2):
        from repro.grid.sigma import SigmaLevels
        from repro.operators.geometry import WorkingGeometry

        return WorkingGeometry.build_global(
            grid, SigmaLevels.uniform(grid.nz), gy=gy, gz=0
        )

    def test_slab_metrics_match_parent_rows(self):
        from repro.core.taskgraph.subdomain import RowSlab

        g = self._geom()
        slab = RowSlab(g, 3, 17, 1)
        # the slab geometry's per-row metric arrays are the same global
        # rows as the parent's — elementwise identical, not just close
        assert np.array_equal(g.sin_c[slab.view], slab.geom.sin_c)
        assert np.array_equal(g.sin_v[slab.view], slab.geom.sin_v)

    def test_split_rows_covers_every_row_once(self):
        from repro.core.taskgraph.subdomain import split_rows

        g = self._geom()
        inner, boundary = split_rows(g, 3, 17, 1)
        rows = sorted(
            r
            for sl in [inner, *boundary]
            for r in range(sl.lo, sl.hi)
        )
        assert rows == list(range(g.shape2d[0]))

    def test_split_rows_rejects_degenerate_ranges(self):
        from repro.core.taskgraph.subdomain import split_rows

        g = self._geom()
        with pytest.raises(ValueError):
            split_rows(g, 0, 17, 1)  # inner may not touch the edge
        with pytest.raises(ValueError):
            split_rows(g, 17, 3, 1)

    def test_filter_subset_partitions_mask(self):
        from repro.core.taskgraph.subdomain import split_rows
        from repro.operators.filter import PolarFilter

        g = self._geom()
        pf = PolarFilter(g, M1)
        if not pf.active:
            pytest.skip("polar filter inactive on this mesh")
        inner, boundary = split_rows(g, 3, 17, 1, pf)
        for fam, mask in (("c", pf.mask_c), ("v", pf.mask_v)):
            total = np.zeros_like(mask, dtype=int)
            for sl in [inner, *boundary]:
                sub, _factors = sl._filter[fam]
                full = np.zeros_like(mask, dtype=int)
                full[sl.view] += sub.astype(int)
                total += full
            assert np.array_equal(total.astype(bool), mask)
            assert total.max() <= 1  # no masked row filtered twice
