"""Reliable transport: retransmission, breakers, sequence-gap detection."""
import numpy as np
import pytest

from repro.simmpi import (
    CorruptedMessage,
    FaultPlan,
    LAPTOP_LIKE,
    LinkFault,
    LinkHealth,
    MessageLost,
    SpmdError,
    TransportConfig,
    run_spmd,
)
from repro.simmpi.transport import detection_delay

NR = 2
NROUNDS = 4
#: payload of the exchange program: 8 float64 = 64 B
NBYTES = 64


def exchange(comm):
    """Bidirectional ring exchange, NROUNDS rounds; returns payload sums."""
    out = []
    for i in range(NROUNDS):
        data = np.arange(8.0) + comm.rank + 10 * i
        got = comm.sendrecv(
            (comm.rank + 1) % comm.size, data, (comm.rank - 1) % comm.size,
            tag=i,
        )
        out.append(float(got.sum()))
    return out


def irecv_exchange(comm):
    """One explicit isend/irecv round — exercises Request.wait directly."""
    dest = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    req_out = comm.isend(dest, np.arange(8.0) + comm.rank, tag=3)
    req_in = comm.irecv(src, tag=3)
    got = req_in.wait()
    req_out.wait()
    return float(got.sum())


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TransportConfig(max_retransmits=-1)
        with pytest.raises(ValueError):
            TransportConfig(rto_base=-1e-6)
        with pytest.raises(ValueError):
            TransportConfig(rto_factor=0.5)
        with pytest.raises(ValueError):
            TransportConfig(breaker_threshold=0)

    def test_rto_backs_off_exponentially_and_caps(self):
        cfg = TransportConfig(rto_base=1e-3, rto_factor=2.0, rto_max=3e-3)
        rtos = [cfg.rto(LAPTOP_LIKE, NBYTES, k) for k in range(4)]
        assert rtos == [1e-3, 2e-3, 3e-3, 3e-3]

    def test_rto_default_derives_from_machine(self):
        cfg = TransportConfig()
        expected = 2.0 * LAPTOP_LIKE.alpha + LAPTOP_LIKE.beta * NBYTES
        assert cfg.rto(LAPTOP_LIKE, NBYTES, 0) == pytest.approx(expected)

    def test_corrupt_detection_costs_more_than_drop(self):
        cfg = TransportConfig()
        drop = detection_delay(cfg, LAPTOP_LIKE, "drop", NBYTES, 0)
        corrupt = detection_delay(cfg, LAPTOP_LIKE, "corrupt", NBYTES, 0)
        # a corrupt attempt travels the wire and is NACKed; a drop only
        # waits out the RTO
        assert corrupt > drop


class TestLinkHealth:
    def test_trips_exactly_at_threshold(self):
        h = LinkHealth()
        assert h.record_failure(3) is False
        assert h.record_failure(3) is False
        assert h.record_failure(3) is True  # the tripping failure
        assert h.open
        assert h.record_failure(3) is False  # already open: no re-trip

    def test_success_closes_and_resets(self):
        h = LinkHealth()
        for _ in range(3):
            h.record_failure(3)
        h.record_success()
        assert not h.open
        assert h.consecutive_failures == 0


class TestRetransmission:
    def test_fault_free_reliable_is_free(self):
        """With no faults the reliable transport is pure bookkeeping:
        clocks and results identical to the raw network."""
        raw = run_spmd(NR, exchange, transport=None)
        rel = run_spmd(NR, exchange, transport=TransportConfig())
        assert rel.clocks == raw.clocks
        assert rel.results == raw.results
        assert all(s.retransmits == 0 for s in rel.stats)

    def test_drop_healed_in_place(self):
        """A windowed drop is retransmitted inside the running program —
        no deadlock, identical data, only the clocks pay."""
        clean = run_spmd(NR, exchange, transport=TransportConfig())
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(drop_probability=1.0, t_end=1e-6),),
        )
        healed = run_spmd(
            NR, exchange, faults=plan, transport=TransportConfig()
        )
        assert healed.results == clean.results
        assert healed.makespan > clean.makespan
        assert healed.critical_stats().retransmits >= 1
        assert healed.critical_stats().retransmit_time > 0
        kinds = {e.kind for e in healed.fault_events()}
        assert "drop" in kinds  # injected, then absorbed

    def test_corrupt_healed_in_place_with_checksums(self):
        """Corruption is sender-detectable only when checksums are armed;
        the retransmitted copy arrives intact."""
        clean = run_spmd(NR, exchange, transport=TransportConfig())
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(corrupt_probability=1.0, t_end=1e-6),),
        )
        healed = run_spmd(
            NR, exchange, faults=plan, verify_checksums=True,
            transport=TransportConfig(),
        )
        assert healed.results == clean.results
        assert healed.critical_stats().retransmits >= 1
        kinds = {e.kind for e in healed.fault_events()}
        assert "corrupt" in kinds
        # the corrupted copies never reached a receiver
        assert "corruption-detected" not in kinds

    def test_corruption_not_retried_without_checksums(self):
        """Without checksums the sender cannot see a NACK: the transport
        must not retry, and the poison goes through (for the blowup/SDC
        gates upstream to catch)."""
        clean = run_spmd(NR, exchange, transport=TransportConfig())
        plan = FaultPlan(
            seed=0, link_faults=(LinkFault(corrupt_probability=1.0),)
        )
        poisoned = run_spmd(
            NR, exchange, faults=plan, transport=TransportConfig()
        )
        assert poisoned.results != clean.results
        assert all(s.retransmits == 0 for s in poisoned.stats)

    def test_each_retry_draws_a_fresh_fate(self):
        """A corrupted-then-retried message re-rolls its fate: with p=0.5
        persistent corruption and a generous retry budget, every message
        eventually lands intact.  If retries replayed the first draw, a
        corrupting link would corrupt forever and exhaust."""
        clean = run_spmd(NR, exchange, transport=TransportConfig())
        plan = FaultPlan(
            seed=11, link_faults=(LinkFault(corrupt_probability=0.5),)
        )
        healed = run_spmd(
            NR, exchange, faults=plan, verify_checksums=True,
            transport=TransportConfig(max_retransmits=16),
        )
        assert healed.results == clean.results
        assert healed.critical_stats().retransmits >= 1


class TestEscalation:
    def test_persistent_corruption_exhausts_to_receiver_checksum(self):
        """When the retry budget runs out the last corrupted copy is
        delivered and the receiver's checksum escalates — the rollback
        path of the resilience layer stays reachable."""
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(source=0, dest=1, corrupt_probability=1.0),),
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                NR, exchange, faults=plan, verify_checksums=True,
                transport=TransportConfig(max_retransmits=2),
            )
        assert isinstance(exc_info.value.exceptions[1], CorruptedMessage)
        events = [e for s in exc_info.value.stats for e in s.fault_events]
        kinds = {e.kind for e in events}
        assert "retransmit-exhausted" in kinds
        assert "corruption-detected" in kinds
        # the sender burned its full budget on each send it got through
        # (two rounds before the receiver's abort): 2 retransmits apiece
        assert exc_info.value.stats[0].retransmits == 4

    def test_permanent_drop_detected_as_sequence_gap(self):
        """A message the transport gives up on stays lost; the next
        delivery on the stream exposes the gap as MessageLost instead of
        leaving the receiver to the deadlock timeout."""

        def lossy_then_ok(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(8.0), tag=7)  # permanently lost
                comm.compute(1.0)  # leave the fault window
                comm.send(1, np.arange(8.0) + 1.0, tag=7)  # arrives, seq 1
                return None
            return comm.recv(0, tag=7)

        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(
                source=0, dest=1, drop_probability=1.0, t_end=1e-3,
            ),),
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                NR, lossy_then_ok, faults=plan,
                transport=TransportConfig(max_retransmits=1, rto_base=1e-6),
            )
        assert isinstance(exc_info.value.exceptions[1], MessageLost)
        assert exc_info.value.stats[1].messages_lost == 1
        kinds = {e.kind for e in exc_info.value.stats[0].fault_events}
        assert "retransmit-exhausted" in kinds
        kinds = {e.kind for e in exc_info.value.stats[1].fault_events}
        assert "message-lost" in kinds


class TestCircuitBreaker:
    def test_breaker_trips_and_fails_fast(self):
        """After ``breaker_threshold`` consecutive wire failures the link
        stops burning retries: later sends give up immediately."""

        def stubborn_sender(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(1, np.arange(8.0), tag=i)

        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(source=0, dest=1, drop_probability=1.0),),
        )
        result = run_spmd(
            NR, stubborn_sender, faults=plan,
            transport=TransportConfig(
                max_retransmits=10, breaker_threshold=2, rto_base=1e-6,
            ),
        )
        s = result.stats[0]
        assert s.breaker_trips == 1
        # only the pre-trip attempt was retransmitted; the open breaker
        # made the two later sends give up without paying a single retry
        assert s.retransmits == 1
        kinds = [e.kind for e in s.fault_events]
        assert "breaker-open" in kinds
        assert kinds.count("retransmit-exhausted") == 3


class TestRequestWaitChecksumPath:
    def test_irecv_wait_detects_corruption_on_raw_network(self):
        """Request.wait verifies the payload checksum itself (the irecv
        path does not go through ``recv``)."""
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(source=0, dest=1, corrupt_probability=1.0),),
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(
                NR, irecv_exchange, faults=plan, verify_checksums=True,
                transport=None,
            )
        assert isinstance(exc_info.value.exceptions[1], CorruptedMessage)
        events = [e for s in exc_info.value.stats for e in s.fault_events]
        assert "corruption-detected" in {e.kind for e in events}

    def test_irecv_wait_sees_healed_payload_under_transport(self):
        clean = run_spmd(NR, irecv_exchange, transport=TransportConfig())
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(corrupt_probability=1.0, t_end=1e-6),),
        )
        healed = run_spmd(
            NR, irecv_exchange, faults=plan, verify_checksums=True,
            transport=TransportConfig(),
        )
        assert healed.results == clean.results
        assert healed.critical_stats().retransmits >= 1


class TestInjectorReseeding:
    def test_begin_attempt_reseeds_per_attempt_streams(self):
        """Fault RNG streams are keyed (seed, attempt, rank): a new
        attempt re-rolls the fates, and replaying to the same attempt
        number reproduces them bit-for-bit."""
        plan = FaultPlan(
            seed=5, link_faults=(LinkFault(corrupt_probability=0.5),)
        )
        inj = plan.injector()
        inj.begin_attempt()
        draws1 = [inj.on_send(0, 1, NBYTES, 0.0)[0] for _ in range(24)]
        inj.begin_attempt()
        draws2 = [inj.on_send(0, 1, NBYTES, 0.0)[0] for _ in range(24)]
        # consecutive draws within one attempt mix outcomes: every wire
        # attempt (including a retransmit of a corrupted message) rolls
        # a fresh fate rather than replaying the previous verdict
        assert set(draws1) == {"deliver", "corrupt"}
        # a new attempt gets a different stream...
        assert draws1 != draws2
        # ...and the streams are reproducible by (seed, attempt, rank)
        replay = plan.injector()
        replay.begin_attempt()
        replay.begin_attempt()
        draws2b = [replay.on_send(0, 1, NBYTES, 0.0)[0] for _ in range(24)]
        assert draws2b == draws2


class TestSeededJitter:
    def test_jitter_unit_deterministic_and_bounded(self):
        from repro.simmpi.transport import jitter_unit

        draws = [jitter_unit(0, a, 0, 1, r)
                 for a in range(5) for r in range(5)]
        again = [jitter_unit(0, a, 0, 1, r)
                 for a in range(5) for r in range(5)]
        assert draws == again
        assert all(0.0 <= u < 1.0 for u in draws)
        # decorrelated across seed, link and retry
        assert jitter_unit(0, 1, 0, 1, 0) != jitter_unit(1, 1, 0, 1, 0)
        assert jitter_unit(0, 1, 0, 1, 0) != jitter_unit(0, 1, 1, 0, 0)
        assert jitter_unit(0, 1, 0, 1, 0) != jitter_unit(0, 1, 0, 1, 1)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            TransportConfig(rto_jitter=-0.1)
        with pytest.raises(ValueError):
            TransportConfig(rto_jitter=1.5)

    def test_default_off_ignores_the_draw(self):
        cfg = TransportConfig(rto_base=1e-3)
        assert cfg.rto_jitter == 0.0
        assert cfg.rto(LAPTOP_LIKE, NBYTES, 1, u=0.0) == \
            cfg.rto(LAPTOP_LIKE, NBYTES, 1, u=0.999)

    def test_jitter_scales_around_the_deterministic_rto(self):
        base = TransportConfig(rto_base=1e-3, rto_factor=2.0)
        jit = TransportConfig(rto_base=1e-3, rto_factor=2.0,
                              rto_jitter=0.5)
        center = base.rto(LAPTOP_LIKE, NBYTES, 1)
        assert jit.rto(LAPTOP_LIKE, NBYTES, 1, u=0.5) == center
        lo = jit.rto(LAPTOP_LIKE, NBYTES, 1, u=0.0)
        hi = jit.rto(LAPTOP_LIKE, NBYTES, 1, u=0.999999)
        assert lo == pytest.approx(center * 0.75)
        assert hi < center * 1.25
        assert lo < center < hi

    def test_chaos_run_with_jitter_is_reproducible(self):
        """The jitter draw is threaded from the fault plan's seed: the
        same chaos run twice is bit-identical, clocks included."""
        plan = FaultPlan(
            seed=11,
            link_faults=(LinkFault(drop_probability=1.0, t_end=1e-6),),
        )
        cfg = TransportConfig(rto_jitter=0.4)
        a = run_spmd(NR, exchange, faults=plan, transport=cfg)
        b = run_spmd(NR, exchange, faults=plan, transport=cfg)
        assert a.clocks == b.clocks
        assert a.results == b.results
        assert a.critical_stats().retransmits >= 1

    def test_default_config_unchanged_by_jitter_feature(self):
        """rto_jitter=0 (the default) is bit-identical to the pre-jitter
        transport: chaos suites keep their exact clocks."""
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(drop_probability=1.0, t_end=1e-6),),
        )
        off = run_spmd(NR, exchange, faults=plan,
                       transport=TransportConfig())
        on = run_spmd(NR, exchange, faults=plan,
                      transport=TransportConfig(rto_jitter=0.0))
        assert off.clocks == on.clocks
        jittered = run_spmd(NR, exchange, faults=plan,
                            transport=TransportConfig(rto_jitter=0.9))
        assert jittered.results == off.results  # data identical; time not
