"""Buddy checkpoints, SDC gates, and the full escalation-ladder acceptance."""
import logging
import time

import pytest

from repro.constants import ModelParameters
from repro.core.buddy import BuddyLost, BuddyStore, buddy_of
from repro.core.driver import DynamicalCore
from repro.core.resilience import (
    ResilienceConfig,
    ResilienceExhausted,
    telemetry_drift,
)
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import CrashSpec, FaultPlan, LinkFault

NSTEPS = 3
NPROCS = 4


@pytest.fixture(scope="module")
def grid():
    return LatLonGrid(nx=32, ny=16, nz=8)


@pytest.fixture(scope="module")
def params():
    return ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )


@pytest.fixture(scope="module")
def state0(grid):
    return perturbed_rest_state(grid, amplitude_k=2.0)


def make_core(grid, params, **kwargs):
    return DynamicalCore(
        grid, algorithm="original-yz", nprocs=NPROCS, params=params, **kwargs
    )


class TestBuddyStoreUnit:
    def test_buddy_ring(self):
        assert [buddy_of(r, 4) for r in range(4)] == [1, 2, 3, 0]
        assert buddy_of(0, 1) == 0  # degenerate: own buddy

    @pytest.fixture()
    def store(self, grid, params):
        core = make_core(grid, params)
        return BuddyStore(core.config.resolve_decomposition())

    def test_roundtrip_is_bit_identical(self, store, state0):
        store.store(5, state0)
        assert state0.max_difference(store.restore(5)) == 0.0

    def test_single_crash_restores_from_mirror(self, store, state0):
        store.store(5, state0)
        store.drop_ranks((2,))
        assert state0.max_difference(store.restore(5)) == 0.0

    def test_losing_owner_and_buddy_raises(self, store, state0):
        store.store(5, state0)
        store.drop_ranks((1, 2))  # rank 1's primary AND its mirror host
        with pytest.raises(BuddyLost):
            store.restore(5)

    def test_wrong_or_missing_step_raises(self, store, state0):
        with pytest.raises(BuddyLost):
            store.restore(0)  # nothing stored yet
        store.store(5, state0)
        with pytest.raises(BuddyLost):
            store.restore(6)

    def test_single_rank_store_is_inert(self, grid, params, state0):
        core = DynamicalCore(grid, algorithm="serial", nprocs=1, params=params)
        store = BuddyStore(core.config.resolve_decomposition())
        assert not store.enabled
        store.store(5, state0)  # no-op
        with pytest.raises(BuddyLost):
            store.restore(5)


class TestBuddyRingProperties:
    """Edge-case properties of the buddy ring itself."""

    @pytest.mark.parametrize("nranks", range(2, 12))
    def test_no_rank_is_its_own_buddy(self, nranks):
        """For any world of >= 2 ranks the ring never degenerates: a
        rank mirrored onto itself would make every crash a double
        fault."""
        for r in range(nranks):
            assert buddy_of(r, nranks) != r

    @pytest.mark.parametrize("nranks", range(2, 12))
    def test_ring_is_a_bijection(self, nranks):
        """Every rank hosts exactly one mirror (the ring is a single
        cycle, so no host is overloaded and none is idle)."""
        hosts = [buddy_of(r, nranks) for r in range(nranks)]
        assert sorted(hosts) == list(range(nranks))

    @pytest.mark.parametrize("nranks", [3, 5, 7])
    def test_odd_rank_counts_survive_any_single_loss(self, nranks):
        """Odd worlds have no pairing symmetry to lean on; each single
        loss must still be recoverable from the surviving mirror."""
        from repro.grid.decomposition import yz_decomposition

        decomp = yz_decomposition(32, 16, 8, nranks)
        state = perturbed_rest_state(LatLonGrid(nx=32, ny=16, nz=8))
        for lost in range(nranks):
            store = BuddyStore(decomp)
            store.store(3, state)
            store.drop_ranks((lost,))
            assert state.max_difference(store.restore(3)) == 0.0

    @pytest.mark.parametrize("nranks", [3, 4, 5])
    def test_owner_and_buddy_lost_always_escalates(self, nranks):
        """Losing any rank together with its mirror host must raise
        ``BuddyLost`` — the signal that sends the resilient driver to
        the disk tier."""
        from repro.grid.decomposition import yz_decomposition

        decomp = yz_decomposition(32, 16, 8, nranks)
        state = perturbed_rest_state(LatLonGrid(nx=32, ny=16, nz=8))
        for lost in range(nranks):
            store = BuddyStore(decomp)
            store.store(3, state)
            store.drop_ranks((lost, buddy_of(lost, nranks)))
            with pytest.raises(BuddyLost):
                store.restore(3)

    @pytest.mark.parametrize("nranks", [3, 4, 5])
    def test_non_adjacent_double_loss_is_recoverable(self, nranks):
        """Two losses that are NOT owner+buddy leave one copy of every
        block alive; the restore must succeed (the elastic tier relies
        on this to avoid disk on independent multi-rank losses)."""
        from repro.grid.decomposition import yz_decomposition

        decomp = yz_decomposition(32, 16, 8, nranks)
        state = perturbed_rest_state(LatLonGrid(nx=32, ny=16, nz=8))
        pairs = [
            (a, b)
            for a in range(nranks) for b in range(a + 1, nranks)
            if buddy_of(a, nranks) != b and buddy_of(b, nranks) != a
        ]
        for a, b in pairs:
            store = BuddyStore(decomp)
            store.store(3, state)
            store.drop_ranks((a, b))
            assert state.max_difference(store.restore(3)) == 0.0


class TestEscalationLadderAcceptance:
    def test_chaos_run_heals_with_one_buddy_restore_and_no_disk(
        self, tmp_path, grid, params, state0
    ):
        """The acceptance sweep of the ladder: background drops and
        corruption plus one rank crash.  Transients are absorbed by
        retransmission, the crash by one diskless buddy restore, and the
        result is bit-identical to the fault-free run — zero disk
        rollbacks, as the obs metrics registry confirms."""
        ref_core = make_core(grid, params)
        ref, _, _ = ref_core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=tmp_path / "ref",
                             checkpoint_interval=1),
        )
        chaos = FaultPlan(
            seed=7,
            crashes=(CrashSpec(rank=1, at_attempt=2, at_call=5),),
            link_faults=(LinkFault(
                drop_probability=0.1, corrupt_probability=0.1,
            ),),
        )
        core = make_core(grid, params, observe=True)
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=tmp_path / "chaos",
                checkpoint_interval=1,
                faults=chaos,
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "crash"
        assert report.restarts[0].source == "buddy"
        assert report.buddy_restores == 1
        assert report.disk_rollbacks == 0
        # the same story told by the metrics registry
        reg = core.observation.registry
        assert reg.counter("resilience_buddy_restores_total").value == 1
        assert reg.counter("resilience_disk_rollbacks_total").value == 0
        assert reg.counter(
            "resilience_restarts_total", kind="crash"
        ).value == 1
        retransmits = sum(
            reg.counter("simmpi_retransmits_total", rank=str(r)).value
            for r in range(NPROCS)
        )
        assert retransmits > 0  # the background noise was healed in place

    def test_double_fault_escalates_to_disk_rollback(
        self, tmp_path, grid, params, state0
    ):
        """Crashing a rank and its buddy in the same chunk loses both
        copies of one block: the buddy store must refuse and the driver
        fall back to the disk checkpoint — and still finish correctly."""
        ref_core = make_core(grid, params)
        ref, _, _ = ref_core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=tmp_path / "ref",
                             checkpoint_interval=1),
        )
        plan = FaultPlan(
            seed=0,
            crashes=(
                CrashSpec(rank=1, at_attempt=2, at_call=1),
                CrashSpec(rank=2, at_attempt=2, at_call=1),
            ),
        )
        core = make_core(grid, params)
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=tmp_path / "double",
                checkpoint_interval=1,
                faults=plan,
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "crash"
        assert report.restarts[0].source == "disk"
        assert report.buddy_restores == 0
        assert report.disk_rollbacks == 1


class TestSdcAcceptanceGate:
    def test_gate_catches_silent_memory_corruption(
        self, tmp_path, grid, params, state0
    ):
        """A bit-flip in memory never crosses the wire, so no checksum
        can see it, and a small one stays finite and bounded — only the
        invariant drift gate rejects it, and the retry (through a buddy
        restore) completes bit-identically."""
        from repro.state.variables import ModelState

        ref_core = make_core(grid, params)
        ref, _, _ = ref_core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=tmp_path / "ref",
                             checkpoint_interval=1),
        )
        core = make_core(grid, params, observe=True)
        real_run_once = core._run_once
        chunk_calls = [0]

        def flip_first_chunk(state, nsteps, **kwargs):
            out, diag, stats = real_run_once(state, nsteps, **kwargs)
            chunk_calls[0] += 1
            if chunk_calls[0] == 1:  # silent upset, once
                out = ModelState(
                    U=out.U, V=out.V, Phi=out.Phi, psa=out.psa + 1e-2
                )
            return out, diag, stats

        core._run_once = flip_first_chunk
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=tmp_path / "sdc",
                checkpoint_interval=1,
                sdc_mass_tol=1e-3,  # absolute: clean drift is ~1e-7
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "sdc"
        assert report.restarts[0].source == "buddy"
        reg = core.observation.registry
        assert reg.counter("resilience_sdc_rejections_total").value == 1

    def test_loose_tolerances_accept_a_clean_run(
        self, tmp_path, grid, params, state0
    ):
        core = make_core(grid, params)
        final, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=tmp_path,
                checkpoint_interval=1,
                sdc_mass_tol=0.5,
                sdc_energy_tol=0.5,
            ),
        )
        assert report.nrestarts == 0

    def test_impossible_tolerance_exhausts(
        self, tmp_path, grid, params, state0
    ):
        """A tolerance below the model's own drift rejects every retry of
        the same (deterministic) chunk until the budget runs out."""
        core = make_core(grid, params)
        with pytest.raises(ResilienceExhausted) as exc_info:
            core.run_resilient(
                state0, NSTEPS,
                ResilienceConfig(
                    checkpoint_dir=tmp_path,
                    checkpoint_interval=1,
                    max_restarts=2,
                    sdc_energy_tol=1e-16,
                ),
            )
        assert "sdc" in str(exc_info.value)

    def test_drift_is_symmetric_and_scaled(self):
        assert telemetry_drift(1.0, 1.0) == 0.0
        assert telemetry_drift(2.0, 1.0) == pytest.approx(0.5)
        assert telemetry_drift(1.0, 2.0) == pytest.approx(0.5)
        assert telemetry_drift(0.0, 0.0) == 0.0  # no division blowup


class TestLogicalBackoff:
    def test_backoff_charges_the_makespan_not_wall_clock(
        self, tmp_path, grid, params, state0
    ):
        plan = FaultPlan(
            seed=0, crashes=(CrashSpec(rank=1, at_attempt=2, at_call=5),)
        )
        core = make_core(grid, params)
        t0 = time.monotonic()
        _, diag, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=tmp_path,
                checkpoint_interval=1,
                faults=plan,
                backoff_base=50.0,
                backoff_max=200.0,
            ),
        )
        elapsed = time.monotonic() - t0
        assert report.nrestarts == 1
        assert report.backoff_time == 50.0
        # the settle time landed in the simulated makespan...
        assert diag.makespan == pytest.approx(
            sum(report.chunk_makespans) + 50.0
        )
        # ...and was never slept for real (50 simulated seconds, while
        # the whole run takes well under that on the wall)
        assert elapsed < 50.0


class TestStartupLogging:
    def test_effective_integrity_mode_is_logged(
        self, tmp_path, grid, params, state0, caplog
    ):
        core = make_core(grid, params)
        with caplog.at_level(logging.INFO, logger="repro.core.resilience"):
            core.run_resilient(
                state0, 1,
                ResilienceConfig(checkpoint_dir=tmp_path),
            )
        assert "integrity mode" in caplog.text
        assert "payload checksums ON" in caplog.text
        assert "reliable transport ON" in caplog.text
        assert "buddy checkpoints ON" in caplog.text
        assert "SDC gates OFF" in caplog.text
