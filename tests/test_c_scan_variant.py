"""The scan-based (volume-optimal) C collective variant."""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.integrator import SerialCore
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.operators.vertical import (
    compute_vertical_diagnostics,
    compute_vertical_diagnostics_scan,
)
from repro.physics import HeldSuarezForcing, balanced_random_state, perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState


class TestOperatorEquivalence:
    def test_single_rank_matches_allgather(self, small_grid, rng):
        """With one z-rank the scan hooks are trivial; results must match
        the allgather implementation on owned levels."""
        sigma = SigmaLevels.uniform(small_grid.nz)
        geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
        state = balanced_random_state(small_grid, rng)
        from repro.core.tendencies import TendencyEngine

        eng = TendencyEngine(geom, ModelParameters())
        w = ModelState.zeros(geom.shape3d)
        for name, arr in state.fields().items():
            getattr(w, name)[..., 2:-2, :] = arr
        eng.fill_physical_ghosts(w)

        vd_ref = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
        vd_scan = compute_vertical_diagnostics_scan(
            w.U, w.V, w.Phi, w.psa, geom,
            exscan=lambda x: np.zeros_like(x),
            allreduce=lambda x: x.copy(),
        )
        assert np.allclose(vd_scan.column_sum, vd_ref.column_sum, rtol=1e-12)
        assert np.allclose(vd_scan.pw_iface, vd_ref.pw_iface,
                           rtol=1e-12, atol=1e-18)
        assert np.allclose(vd_scan.phi_prime, vd_ref.phi_prime, rtol=1e-12)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def setting(self):
        grid = LatLonGrid(nx=32, ny=16, nz=8)
        params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
        state0 = perturbed_rest_state(grid, amplitude_k=2.0)
        serial = SerialCore(
            grid, params=params, forcing=HeldSuarezForcing()
        ).run(state0, 2)
        return grid, params, state0, serial

    @pytest.mark.parametrize("pz", [2, 4])
    def test_scan_core_matches_serial(self, setting, pz):
        grid, params, state0, serial = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, pz)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=2,
            forcing=HeldSuarezForcing(), c_method="scan",
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        blocks = [r.state for r in res.results]
        gathered = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
        assert serial.max_difference(gathered) < 1e-10

    def test_scan_moves_fewer_collective_bytes(self, setting):
        """The whole point: exscan + allreduce moves O(n) per rank vs the
        allgather's (p_z - 1) n."""
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 4)
        out = {}
        for method in ("allgather", "scan"):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=2,
                c_method=method,
            )
            res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
            out[method] = max(s.collective_bytes for s in res.stats)
        assert out["scan"] < out["allgather"]

    def test_scan_has_two_collectives_per_c(self, setting):
        """scan = exscan + allreduce: 2 collective ops per C call."""
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=1,
            c_method="scan",
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        n_c = 3 * params.m_iterations
        assert all(s.collective_ops == 2 * n_c for s in res.stats)

    def test_invalid_method_rejected(self, setting):
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, c_method="smoke-signals"
        )
        with pytest.raises(Exception):
            run_spmd(decomp.nranks, original_rank_program, cfg, state0)

    def test_ca_core_with_scan(self, setting):
        """Algorithm 2 composes with the scan variant too."""
        from repro.core.comm_avoiding import ca_rank_program

        grid, state0 = setting[0], setting[2]
        params = ModelParameters(
            dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
        )
        serial = SerialCore(
            grid, params=params, approximate_c=True,
            forcing=HeldSuarezForcing(),
        ).run(state0, 2)
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=2,
            forcing=HeldSuarezForcing(), c_method="scan",
        )
        res = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        blocks = [r.state for r in res.results]
        gathered = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
        assert serial.max_difference(gathered) < 1e-10
