"""H-S climatology diagnostics and a short acceptance run."""
import numpy as np
import pytest

from repro.analysis.climatology import ClimatologyAccumulator
from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.physics import HeldSuarezForcing, perturbed_rest_state, rest_state


@pytest.fixture
def grid():
    return LatLonGrid(nx=32, ny=16, nz=6)


@pytest.fixture
def sigma(grid):
    return SigmaLevels.uniform(grid.nz)


class TestAccumulator:
    def test_requires_samples(self, grid, sigma):
        acc = ClimatologyAccumulator(grid, sigma)
        with pytest.raises(ValueError):
            acc.finalize()

    def test_shape_validation(self, grid, sigma):
        acc = ClimatologyAccumulator(grid, sigma)
        wrong = rest_state(LatLonGrid(nx=16, ny=8, nz=6))
        with pytest.raises(ValueError):
            acc.add(wrong)

    def test_rest_state_climatology(self, grid, sigma):
        acc = ClimatologyAccumulator(grid, sigma)
        acc.add(rest_state(grid))
        clim = acc.finalize()
        assert np.allclose(clim.u_bar, 0.0)
        assert np.allclose(clim.eddy_kinetic, 0.0)
        assert np.allclose(clim.ps_bar, 1.0e5, rtol=1e-6)
        assert clim.samples == 1

    def test_mean_of_constant_samples(self, grid, sigma, rng):
        from repro.physics import balanced_random_state

        acc = ClimatologyAccumulator(grid, sigma)
        state = balanced_random_state(grid, rng)
        for _ in range(3):
            acc.add(state)
        one = ClimatologyAccumulator(grid, sigma)
        one.add(state)
        a, b = acc.finalize(), one.finalize()
        assert np.allclose(a.u_bar, b.u_bar)
        assert np.allclose(a.eddy_kinetic, b.eddy_kinetic)

    def test_render(self, grid, sigma):
        acc = ClimatologyAccumulator(grid, sigma)
        acc.add(rest_state(grid))
        text = acc.finalize().render()
        assert "jet" in text and "lat" in text


class TestSpinUpAcceptance:
    """A short forced run must start developing the H-S circulation."""

    @pytest.fixture(scope="class")
    def spun_up(self):
        grid = LatLonGrid(nx=32, ny=16, nz=6)
        sigma = SigmaLevels.uniform(grid.nz)
        params = ModelParameters(dt_adaptation=120.0, dt_advection=360.0)
        core = SerialCore(grid, params=params, forcing=HeldSuarezForcing())
        acc = ClimatologyAccumulator(grid, sigma)
        w = core.pad(perturbed_rest_state(grid, amplitude_k=2.0))
        nsteps = 400  # ~1.7 model days
        for k in range(nsteps):
            w = core.step(w)
            if k >= nsteps // 2:
                acc.add(core.strip(w))
        return acc.finalize()

    def test_westerlies_developing_aloft(self, spun_up):
        """Differential heating spins up midlatitude westerlies aloft."""
        ny = spun_up.latitudes_deg.size
        mid_n = slice(2, ny // 2 - 1)
        u_top = spun_up.u_bar[0:2, mid_n]
        assert u_top.max() > 0.05

    def test_temperature_gradient_building(self, spun_up):
        assert spun_up.surface_temperature_contrast() > 1.0

    def test_roughly_hemispherically_symmetric(self, spun_up):
        # early spin-up from a NH perturbation: loose bound
        assert spun_up.hemispheric_symmetry_error() < 1.0

    def test_bounded_fields(self, spun_up):
        assert np.abs(spun_up.u_bar).max() < 50.0
        assert np.abs(spun_up.ps_bar - 1.0e5).max() < 5000.0
