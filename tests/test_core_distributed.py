"""Distributed Algorithm 1 == serial reference, on every decomposition."""
import pytest

from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.integrator import SerialCore
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState


def gather_states(decomp, results):
    blocks = [r.state for r in results]
    return ModelState(
        U=decomp.gather([b.U for b in blocks]),
        V=decomp.gather([b.V for b in blocks]),
        Phi=decomp.gather([b.Phi for b in blocks]),
        psa=decomp.gather([b.psa for b in blocks]),
    )


@pytest.fixture(scope="module")
def reference():
    from repro.constants import ModelParameters

    grid = LatLonGrid(nx=32, ny=16, nz=6)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    nsteps = 3
    ref = SerialCore(
        grid, params=params, forcing=HeldSuarezForcing()
    ).run(state0, nsteps)
    return grid, params, state0, nsteps, ref


DECOMPS = [
    (1, 1, 1),
    (1, 2, 1),
    (1, 4, 1),
    (1, 2, 2),
    (1, 4, 2),
    (2, 2, 1),
    (4, 2, 1),
    (2, 2, 2),
]


@pytest.mark.parametrize("shape", DECOMPS, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
class TestEquivalence:
    def test_matches_serial(self, reference, shape):
        grid, params, state0, nsteps, ref = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, *shape)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params,
            nsteps=nsteps, forcing=HeldSuarezForcing(),
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        gathered = gather_states(decomp, res.results)
        assert ref.max_difference(gathered) < 1e-12


class TestCommunicationSchedule:
    def test_thirteen_exchanges_per_step(self, reference):
        """3M + 3 + 1 = 13 halo refreshes per step for M = 3 (Sec. 4.3.1),
        plus the one initial refresh."""
        grid, params, state0, nsteps, _ = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
            forcing=HeldSuarezForcing(),
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        assert res.results[0].exchanges == 13 * nsteps + 1

    def test_three_m_collectives_per_step(self, reference):
        grid, params, state0, nsteps, _ = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        assert res.results[0].c_calls == 3 * params.m_iterations * nsteps
        # every C call is one z-line collective on every rank
        assert all(
            s.collective_ops == 3 * params.m_iterations * nsteps
            for s in res.stats
        )

    def test_xy_filter_collectives(self, reference):
        """Polar x-lines pay one collective per F application."""
        grid, params, state0, nsteps, _ = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 2, 2, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        n_f = (3 * params.m_iterations + 3) * nsteps
        # polar rows are filtered for U, V, Phi and psa: 4 gathers per F
        assert all(s.collective_ops == 4 * n_f for s in res.stats)

    def test_yz_has_no_stencil_x_traffic(self, reference):
        """Under Y-Z the polar filter is communication-free (Sec. 4.2.1):
        all collectives are the z-direction C operations."""
        grid, params, state0, nsteps, _ = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 4, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        assert all(s.collective_ops == 0 for s in res.stats)


class TestValidation:
    def test_rank_count_mismatch_raises(self, reference):
        grid, params, state0, nsteps, _ = reference
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 1)
        cfg = DistributedConfig(grid=grid, decomp=decomp, params=params)
        with pytest.raises(Exception):
            run_spmd(3, original_rank_program, cfg, state0)

    def test_wrong_grid_decomp_pair(self, reference):
        grid, params, *_ = reference
        bad = Decomposition(16, 8, 4, 1, 2, 1)
        with pytest.raises(ValueError):
            DistributedConfig(grid=grid, decomp=bad, params=params)
