"""Checkpoint save/restore."""
import numpy as np
import pytest

from repro.state.io import load_state, save_state
from repro.state.variables import ModelState


class TestRoundTrip:
    def test_save_load(self, tmp_path, rng):
        state = ModelState.random((3, 5, 8), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state, step=42)
        loaded, step = load_state(path)
        assert step == 42
        assert loaded.allclose(state, rtol=0, atol=0)

    def test_loaded_is_independent(self, tmp_path, rng):
        state = ModelState.random((2, 4, 6), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state)
        loaded, _ = load_state(path)
        loaded.U += 1.0
        loaded2, _ = load_state(path)
        assert loaded2.allclose(state, rtol=0, atol=0)

    def test_restart_continues_identically(self, tmp_path):
        """Checkpoint/restart must be bit-transparent to the integration."""
        from repro.constants import ModelParameters
        from repro.core.integrator import SerialCore
        from repro.grid.latlon import LatLonGrid
        from repro.physics import perturbed_rest_state

        grid = LatLonGrid(nx=16, ny=8, nz=4)
        params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
        s0 = perturbed_rest_state(grid, amplitude_k=1.0)

        straight = SerialCore(grid, params=params).run(s0, 4)

        core_a = SerialCore(grid, params=params)
        mid = core_a.run(s0, 2)
        path = tmp_path / "restart.npz"
        save_state(path, mid, step=2)
        resumed, step = load_state(path)
        assert step == 2
        core_b = SerialCore(grid, params=params)
        final = core_b.run(resumed, 2)
        # note: the original (non-approximate) core carries no cross-step
        # hidden state except the frozen sigma-dot bundle, which is
        # recomputed each step -> exact restart
        assert straight.max_difference(final) < 1e-12


class TestValidation:
    def test_missing_field(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, U=np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            load_state(path)

    def test_wrong_version(self, tmp_path, rng):
        state = ModelState.random((1, 3, 4), rng)
        path = tmp_path / "old.npz"
        np.savez(
            path, version=np.int64(99), step=np.int64(0),
            U=state.U, V=state.V, Phi=state.Phi, psa=state.psa,
        )
        with pytest.raises(ValueError):
            load_state(path)
