"""Checkpoint save/restore."""
import numpy as np
import pytest

from repro.state.io import (
    atomic_write_bytes,
    checkpoint_path,
    checksum_path,
    file_sha256,
    latest_verified_checkpoint,
    load_state,
    quarantine_file,
    save_state,
    verify_sidecar,
)
from repro.state.variables import ModelState


class TestRoundTrip:
    def test_save_load(self, tmp_path, rng):
        state = ModelState.random((3, 5, 8), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state, step=42)
        loaded, step = load_state(path)
        assert step == 42
        assert loaded.allclose(state, rtol=0, atol=0)

    def test_loaded_is_independent(self, tmp_path, rng):
        state = ModelState.random((2, 4, 6), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state)
        loaded, _ = load_state(path)
        loaded.U += 1.0
        loaded2, _ = load_state(path)
        assert loaded2.allclose(state, rtol=0, atol=0)

    def test_restart_continues_identically(self, tmp_path):
        """Checkpoint/restart must be bit-transparent to the integration."""
        from repro.constants import ModelParameters
        from repro.core.integrator import SerialCore
        from repro.grid.latlon import LatLonGrid
        from repro.physics import perturbed_rest_state

        grid = LatLonGrid(nx=16, ny=8, nz=4)
        params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
        s0 = perturbed_rest_state(grid, amplitude_k=1.0)

        straight = SerialCore(grid, params=params).run(s0, 4)

        core_a = SerialCore(grid, params=params)
        mid = core_a.run(s0, 2)
        path = tmp_path / "restart.npz"
        save_state(path, mid, step=2)
        resumed, step = load_state(path)
        assert step == 2
        core_b = SerialCore(grid, params=params)
        final = core_b.run(resumed, 2)
        # note: the original (non-approximate) core carries no cross-step
        # hidden state except the frozen sigma-dot bundle, which is
        # recomputed each step -> exact restart
        assert straight.max_difference(final) < 1e-12


class TestValidation:
    def test_missing_field(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, U=np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            load_state(path)

    def test_wrong_version(self, tmp_path, rng):
        state = ModelState.random((1, 3, 4), rng)
        path = tmp_path / "old.npz"
        np.savez(
            path, version=np.int64(99), step=np.int64(0),
            U=state.U, V=state.V, Phi=state.Phi, psa=state.psa,
        )
        with pytest.raises(ValueError):
            load_state(path)


class TestAtomicWrites:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        digest = atomic_write_bytes(tmp_path / "a.bin", b"hello")
        assert (tmp_path / "a.bin").read_bytes() == b"hello"
        assert digest == file_sha256(tmp_path / "a.bin")
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_save_state_writes_verified_sidecar(self, tmp_path, rng):
        state = ModelState.random((2, 4, 6), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state, step=7)
        assert checksum_path(path).exists()
        assert verify_sidecar(path) is True

    def test_verify_flags_corruption(self, tmp_path):
        path = tmp_path / "b.bin"
        atomic_write_bytes(path, b"x" * 100)
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert verify_sidecar(path) is False

    def test_legacy_file_without_sidecar_is_undetermined(self, tmp_path):
        (tmp_path / "legacy.bin").write_bytes(b"old")
        assert verify_sidecar(tmp_path / "legacy.bin") is None

    def test_load_rejects_checksum_mismatch(self, tmp_path, rng):
        state = ModelState.random((2, 4, 6), rng)
        path = tmp_path / "ckpt.npz"
        save_state(path, state)
        checksum_path(path).write_text("0" * 64 + "  ckpt.npz\n")
        with pytest.raises(ValueError, match="checksum"):
            load_state(path)
        loaded, _ = load_state(path, verify=False)
        assert loaded.allclose(state, rtol=0, atol=0)

    def test_quarantine_moves_payload_and_sidecar(self, tmp_path):
        path = tmp_path / "bad.npz"
        atomic_write_bytes(path, b"junk")
        qdir = tmp_path / "quarantine"
        dest = quarantine_file(path, qdir)
        assert not path.exists() and not checksum_path(path).exists()
        assert dest.exists() and checksum_path(dest).exists()
        # a second victim with the same name gets a unique slot
        atomic_write_bytes(path, b"junk2")
        dest2 = quarantine_file(path, qdir)
        assert dest2 != dest and dest2.exists()


class TestVerifiedResume:
    def test_falls_back_past_truncated_newest(self, tmp_path, rng):
        """A checkpoint torn mid-write must not poison the resume: the
        scan skips it and lands on the previous good one."""
        state = ModelState.random((2, 4, 6), rng)
        for step in (2, 4, 6):
            save_state(checkpoint_path(tmp_path, step), state, step=step)
        newest = checkpoint_path(tmp_path, 6)
        newest.write_bytes(newest.read_bytes()[:40])  # truncate = torn
        found = latest_verified_checkpoint(tmp_path)
        assert found is not None
        path, step = found
        assert step == 4
        loaded, lstep = load_state(path)
        assert lstep == 4 and loaded.allclose(state, rtol=0, atol=0)

    def test_falls_back_past_torn_legacy_file(self, tmp_path, rng):
        """No sidecar (legacy) + unparseable container -> also skipped."""
        state = ModelState.random((2, 4, 6), rng)
        save_state(checkpoint_path(tmp_path, 1), state, step=1)
        checkpoint_path(tmp_path, 3).write_bytes(b"PK\x03\x04 torn")
        found = latest_verified_checkpoint(tmp_path)
        assert found is not None and found[1] == 1

    def test_all_checkpoints_bad_returns_none(self, tmp_path):
        checkpoint_path(tmp_path, 1).write_bytes(b"garbage")
        assert latest_verified_checkpoint(tmp_path) is None
        assert latest_verified_checkpoint(tmp_path / "missing") is None
