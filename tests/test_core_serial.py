"""The serial reference core: Algorithm 1 semantics and stability."""
import numpy as np
import pytest

from repro.analysis.energy import energy_budget, global_mean_psa
from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.physics import HeldSuarezForcing, perturbed_rest_state, rest_state


class TestStepStructure:
    def test_c_call_frequency_original(self, small_grid, fast_params):
        """Original: 3 fresh C per nonlinear iteration -> 9 per step (M=3)."""
        core = SerialCore(small_grid, params=fast_params)
        core.run(rest_state(small_grid), 2)
        assert core.c_calls == 3 * fast_params.m_iterations * 2

    def test_c_call_frequency_approximate(self, small_grid, fast_params):
        """Approximate: 2 per iteration + one cold start (Sec. 4.2.2)."""
        core = SerialCore(small_grid, params=fast_params, approximate_c=True)
        core.run(rest_state(small_grid), 2)
        assert core.c_calls == 2 * fast_params.m_iterations * 2 + 1

    def test_one_third_reduction(self, small_grid, fast_params):
        """The headline claim: one third of C communication removed."""
        orig = SerialCore(small_grid, params=fast_params)
        appr = SerialCore(small_grid, params=fast_params, approximate_c=True)
        n = 5
        orig.run(rest_state(small_grid), n)
        appr.run(rest_state(small_grid), n)
        ratio = appr.c_calls / orig.c_calls
        assert ratio == pytest.approx(2.0 / 3.0, abs=0.03)

    def test_steps_counted(self, small_grid, fast_params):
        core = SerialCore(small_grid, params=fast_params)
        core.run(rest_state(small_grid), 3)
        assert core.steps_taken == 3


class TestDynamics:
    def test_rest_state_is_fixed_point(self, small_grid, fast_params):
        core = SerialCore(small_grid, params=fast_params)
        out = core.run(rest_state(small_grid), 3)
        assert out.max_abs() == pytest.approx(0.0, abs=1e-10)

    def test_perturbation_radiates_winds(self, small_grid, fast_params):
        core = SerialCore(small_grid, params=fast_params)
        out = core.run(perturbed_rest_state(small_grid, amplitude_k=2.0), 5)
        assert out.isfinite()
        assert np.abs(out.U).max() > 0.0
        assert np.abs(out.V).max() > 0.0
        assert np.abs(out.psa).max() > 0.0

    def test_short_run_stable(self, small_grid, fast_params, bump_state):
        core = SerialCore(
            small_grid, params=fast_params, forcing=HeldSuarezForcing()
        )
        out = core.run(bump_state, 20)
        assert out.isfinite()
        assert np.abs(out.U).max() < 50.0
        assert np.abs(out.psa).max() < 5000.0

    def test_blowup_detection(self, small_grid, fast_params):
        core = SerialCore(small_grid, params=fast_params)
        state = rest_state(small_grid)
        state.U[:] = 1e30  # absurd initial winds
        with pytest.raises((FloatingPointError, ValueError)):
            core.run(state, 5)

    def test_monitor_called_each_step(self, small_grid, fast_params):
        core = SerialCore(small_grid, params=fast_params)
        seen = []
        core.run(rest_state(small_grid), 4, monitor=lambda k, s: seen.append(k))
        assert seen == [1, 2, 3, 4]


class TestApproximationQuality:
    def test_approximate_close_to_original(self, small_grid, fast_params, bump_state):
        """Eq. 13 replaces the highest-order correction only: the error
        after several steps stays orders below the signal."""
        orig = SerialCore(small_grid, params=fast_params)
        appr = SerialCore(small_grid, params=fast_params, approximate_c=True)
        a = orig.run(bump_state, 10)
        b = appr.run(bump_state, 10)
        err = a.max_difference(b)
        signal = max(a.max_abs(), 1e-30)
        assert err < 2e-3 * signal

    def test_approximation_error_order_three_plus(self, small_grid, bump_state):
        """The substitution is an O(dt) change inside the O(dt^3)
        correction term of Eq. 12: the observable error converges at
        order >= 3 (measured ~4)."""
        errs = []
        for dt in (120.0, 60.0):
            params = ModelParameters(
                dt_adaptation=dt, dt_advection=3 * dt, m_iterations=3
            )
            a = SerialCore(small_grid, params=params).run(bump_state, 1)
            b = SerialCore(
                small_grid, params=params, approximate_c=True
            ).run(bump_state, 1)
            errs.append(a.max_difference(b))
        assert errs[1] < errs[0] / 8.0  # order >= 3


class TestConservation:
    def test_mass_nearly_conserved(self, small_grid, fast_params, bump_state):
        core = SerialCore(small_grid, params=fast_params)
        m0 = global_mean_psa(bump_state, small_grid)
        out = core.run(bump_state, 10)
        m1 = global_mean_psa(out, small_grid)
        assert abs(m1 - m0) < 0.5  # Pa; D_sa dissipation only

    def test_energy_bounded_unforced(self, small_grid, fast_params, bump_state):
        """Unforced dynamics + smoothing must not create energy."""
        core = SerialCore(small_grid, params=fast_params)
        e0 = energy_budget(bump_state, small_grid).total
        out = core.run(bump_state, 10)
        e1 = energy_budget(out, small_grid).total
        assert e1 < 1.5 * e0 + 1e-6
