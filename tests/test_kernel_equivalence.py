"""Kernel-equivalence harness: the fused tier must be a bitwise no-op.

Every backend of the fused kernel tier (compiled C, numba-JITted loops,
fused numpy) reproduces the reference operators bit for bit — same IEEE
binary-operation sequence, only the scheduling differs.  These tests pin
that guarantee at three levels: per-operator against the reference
workspace implementations, per-trajectory on the serial core, and
per-trajectory across the thread and process SPMD backends.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.kernels import (
    BACKENDS,
    TIERS,
    available_backends,
    c_available,
    kernel_set,
    numba_available,
    plan_cache_stats,
    registered_plans,
    resolve_backend,
)
from repro.physics import balanced_random_state

FIELDS = ("U", "V", "Phi", "psa")


def _assert_states_equal(a, b, context: str) -> None:
    for f in FIELDS:
        fa, fb = getattr(a, f), getattr(b, f)
        assert np.array_equal(fa, fb), (
            f"{context}: field {f} diverges "
            f"(max |delta| = {np.max(np.abs(fa - fb))})"
        )
        # array_equal treats -0.0 == 0.0; the tier contract is bitwise
        assert np.array_equal(np.signbit(fa), np.signbit(fb)), (
            f"{context}: field {f} differs in signed zeros"
        )


def _serial_trajectory(grid, s0, tier, backend="auto", nsteps=3, params=None):
    core = SerialCore(
        grid,
        params=params or ModelParameters(),
        kernel_tier=tier,
        kernel_backend=backend,
    )
    w = core.pad(s0)
    for _ in range(nsteps):
        w = core.step(w)
    return w  # ghost-extended working state: compared in full


# ---------------------------------------------------------------------------
# tier plumbing
# ---------------------------------------------------------------------------
def test_reference_tier_has_no_kernel_set():
    assert kernel_set("reference") is None


def test_unknown_tier_and_backend_rejected():
    with pytest.raises(ValueError, match="kernel tier"):
        kernel_set("turbo")
    with pytest.raises(ValueError, match="kernel backend"):
        resolve_backend("fortran")


def test_available_backends_always_end_in_numpy():
    backends = available_backends()
    assert backends[-1] == "numpy"
    assert set(backends) <= set(BACKENDS)
    assert "auto" not in backends


def test_resolve_auto_prefers_compiled():
    resolved = resolve_backend("auto")
    assert resolved == available_backends()[0]
    if c_available():
        assert resolved == "c"


def test_describe_reports_coverage():
    ks = kernel_set("fused", backend="numpy")
    d = ks.describe()
    assert d["tier"] == "fused"
    assert d["backend"] == "numpy"
    assert d["exact"] is True
    assert d["coverage"] == ["smoothing"]


def test_tiers_tuple_is_the_public_contract():
    assert TIERS == ("reference", "fused")


# ---------------------------------------------------------------------------
# serial trajectories: fused == reference, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["auto", "c", "numba", "numpy"])
def test_serial_trajectory_bit_identical(backend, small_grid, rng):
    if backend == "c" and not c_available():
        pytest.skip("no C compiler on this host")
    if backend == "numba" and not numba_available():
        # without numba the same undecorated loops run: still covered
        pass
    s0 = balanced_random_state(small_grid, rng)
    ref = _serial_trajectory(small_grid, s0, "reference")
    fused = _serial_trajectory(small_grid, s0, "fused", backend=backend)
    _assert_states_equal(ref, fused, f"serial fused[{backend}]")


def test_serial_trajectory_with_y_smoothing_and_cross(small_grid, rng):
    """The beta_y / cross smoothing stages must fuse bit-exactly too."""
    params = ModelParameters(smoothing_beta_y_uv=0.06)
    s0 = balanced_random_state(small_grid, rng)
    ref = _serial_trajectory(small_grid, s0, "reference", params=params)
    fused = _serial_trajectory(small_grid, s0, "fused", params=params)
    _assert_states_equal(ref, fused, "serial fused with beta_y")


def test_fused_plans_registered_and_memoised(small_grid, rng):
    s0 = balanced_random_state(small_grid, rng)
    _serial_trajectory(small_grid, s0, "fused", nsteps=2)
    plans = registered_plans()
    assert plans, "fused run registered no kernel plans"
    ops = {p.op for p in plans}
    assert "smoothing" in ops
    if c_available():
        assert {"advection", "adaptation", "vertical"} <= ops
    stats = plan_cache_stats()
    assert stats["size"] == len(plans)
    assert stats["hits"] > 0, "second step should hit the plan cache"
    for plan in plans:
        assert plan.stages, f"plan {plan.op} lists no atomic stages"


# ---------------------------------------------------------------------------
# SPMD trajectories: tier equivalence across execution backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("spmd_backend", ["thread", "process"])
def test_distributed_trajectory_bit_identical(spmd_backend, one_iter_params):
    grid = LatLonGrid(nx=32, ny=16, nz=6)
    s0 = balanced_random_state(grid, np.random.default_rng(20180813))
    finals = {}
    for tier in ("reference", "fused"):
        core = DynamicalCore(
            grid,
            algorithm="original-yz",
            nprocs=2,
            params=one_iter_params,
            backend=spmd_backend,
            kernel_tier=tier,
        )
        finals[tier], _ = core.run(s0, 2)
    _assert_states_equal(
        finals["reference"], finals["fused"], f"{spmd_backend} backend"
    )


def test_ca_algorithm_trajectory_bit_identical(one_iter_params):
    grid = LatLonGrid(nx=32, ny=32, nz=6)
    s0 = balanced_random_state(grid, np.random.default_rng(20180813))
    finals = {}
    for tier in ("reference", "fused"):
        core = DynamicalCore(
            grid,
            algorithm="ca",
            nprocs=2,
            params=one_iter_params,
            kernel_tier=tier,
        )
        finals[tier], _ = core.run(s0, 2)
    _assert_states_equal(finals["reference"], finals["fused"], "ca algorithm")


# ---------------------------------------------------------------------------
# graceful fallback
# ---------------------------------------------------------------------------
def test_numpy_backend_falls_back_outside_its_coverage(small_grid, rng):
    """numpy fuses smoothing only; the rest must hit the reference path
    transparently — the trajectory stays bit-identical either way."""
    ks = kernel_set("fused", backend="numpy")
    assert ks.advection(None, None, None, None, None, None) is None
    s0 = balanced_random_state(small_grid, rng)
    ref = _serial_trajectory(small_grid, s0, "reference")
    fused = _serial_trajectory(small_grid, s0, "fused", backend="numpy")
    _assert_states_equal(ref, fused, "numpy-backend fallback")


def test_non_contiguous_input_falls_back(small_grid, rng):
    from repro.core.workspace import Workspace
    from repro.operators.smoothing import smoothers_for

    ks = kernel_set("fused")
    sm = smoothers_for(ModelParameters())["U"]
    a = np.asfortranarray(rng.normal(size=(6, 16, 32)))
    out = np.empty_like(a)
    assert ks.smooth_field(sm, a, out, Workspace()) is None


def test_env_override_selects_tier(small_grid, rng, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_TIER", "fused")
    core = DynamicalCore(grid=small_grid, algorithm="serial")
    assert core.config.kernel_tier == "fused"
    monkeypatch.setenv("REPRO_KERNEL_TIER", "warp")
    with pytest.raises(ValueError, match="kernel_tier"):
        DynamicalCore(grid=small_grid, algorithm="serial")


# ---------------------------------------------------------------------------
# observability: fused calls appear as kernel-category spans
# ---------------------------------------------------------------------------
def test_fused_runs_emit_kernel_spans(tmp_path, one_iter_params):
    import json

    from repro.obs import ObsConfig

    grid = LatLonGrid(nx=32, ny=16, nz=6)
    s0 = balanced_random_state(grid, np.random.default_rng(7))
    trace = tmp_path / "fused_trace.json"
    core = DynamicalCore(
        grid,
        algorithm="serial",
        params=one_iter_params,
        kernel_tier="fused",
        observe=ObsConfig(chrome_trace=trace),
    )
    core.run(s0, 1)
    events = json.loads(trace.read_text())
    events = events["traceEvents"] if isinstance(events, dict) else events
    kernel_spans = [
        e for e in events
        if isinstance(e, dict) and e.get("cat") == "kernel"
    ]
    assert kernel_spans, "no kernel-category spans in the fused trace"
    names = {e["name"] for e in kernel_spans}
    assert any(n.startswith("smoothing-fused[") for n in names), names
