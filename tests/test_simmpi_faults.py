"""Fault-injection substrate: deterministic, typed, observable."""
import numpy as np
import pytest

from repro.simmpi import (
    CorruptedMessage,
    CrashSpec,
    DegradedWindow,
    FaultPlan,
    LinkFault,
    RankCrash,
    SpmdError,
    Straggler,
    run_spmd,
)

NR = 4


def ring_program(comm, nrounds=4):
    """Compute + ring p2p + allreduce, every round."""
    data = np.arange(16.0) + comm.rank
    total = 0.0
    for i in range(nrounds):
        comm.compute(1e-3)
        comm.send((comm.rank + 1) % NR, data, tag=i)
        got = comm.recv((comm.rank - 1) % NR, tag=i)
        s = comm.allreduce(np.array([got.sum()]), op="sum")
        total += float(s[0])
    return total


class TestPlanValidation:
    def test_crash_spec_needs_a_trigger(self):
        with pytest.raises(ValueError):
            CrashSpec(rank=0)

    def test_link_fault_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            LinkFault(drop_probability=1.5)

    def test_link_fault_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            LinkFault(corrupt_probability=0.5, corrupt_mode="flip")

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ValueError):
            Straggler(rank=0, slowdown=0.5)

    def test_describe_mentions_everything(self):
        plan = FaultPlan(
            seed=9,
            crashes=(CrashSpec(rank=0, at_call=1),),
            link_faults=(LinkFault(drop_probability=0.5),),
        )
        text = plan.describe()
        assert "seed=9" in text
        assert "1 crash(es)" in text
        assert "1 link fault(s)" in text


class TestDeterminism:
    def test_fixed_seed_runs_are_bit_identical(self):
        """Same plan, same seed -> same clocks, events and results."""
        plan = FaultPlan(
            seed=3,
            degraded=(DegradedWindow(0.0, 1e9, beta_factor=4.0),),
            stragglers=(Straggler(rank=1, slowdown=3.0),),
            link_faults=(LinkFault(corrupt_probability=0.3),),
        )
        a = run_spmd(NR, ring_program, faults=plan)
        b = run_spmd(NR, ring_program, faults=plan)
        assert a.clocks == b.clocks
        assert a.results == b.results
        ev = lambda r: [(e.rank, e.kind, e.t, e.detail) for e in r.fault_events()]
        assert ev(a) == ev(b)
        assert len(ev(a)) > 0

    def test_different_seed_changes_probabilistic_outcomes(self):
        mk = lambda seed: FaultPlan(
            seed=seed, link_faults=(LinkFault(corrupt_probability=0.5),)
        )
        a = run_spmd(NR, ring_program, faults=mk(1))
        b = run_spmd(NR, ring_program, faults=mk(2))
        kinds = lambda r: [(e.rank, e.kind) for e in r.fault_events()]
        # with 16 sends at p=0.5, identical outcomes are (1/2)^16 unlikely
        assert kinds(a) != kinds(b) or a.results != b.results


class TestCrashes:
    def test_crash_at_call_raises_rank_crash(self):
        plan = FaultPlan(crashes=(CrashSpec(rank=2, at_call=5),))
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(NR, ring_program, faults=plan)
        assert isinstance(exc_info.value.exceptions[2], RankCrash)
        assert exc_info.value.exceptions[2].rank == 2

    def test_crash_at_time(self):
        clean = run_spmd(NR, ring_program)
        plan = FaultPlan(
            crashes=(CrashSpec(rank=0, at_time=clean.makespan / 2),)
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(NR, ring_program, faults=plan)
        assert isinstance(exc_info.value.exceptions[0], RankCrash)

    def test_crash_event_recorded_in_stats(self):
        plan = FaultPlan(crashes=(CrashSpec(rank=1, at_call=3),))
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(NR, ring_program, faults=plan)
        events = [e for s in exc_info.value.stats for e in s.fault_events]
        assert [(e.rank, e.kind) for e in events] == [(1, "crash")]

    def test_crashes_are_one_shot_per_injector(self):
        """A fired spec stays consumed: the retry through the same
        injector completes (the replaced-node model)."""
        plan = FaultPlan(crashes=(CrashSpec(rank=2, at_call=5),))
        injector = plan.injector()
        with pytest.raises(SpmdError):
            run_spmd(NR, ring_program, faults=injector)
        result = run_spmd(NR, ring_program, faults=injector)
        clean = run_spmd(NR, ring_program)
        assert result.results == clean.results

    def test_at_attempt_targets_a_later_launch(self):
        plan = FaultPlan(crashes=(CrashSpec(rank=0, at_attempt=2, at_call=1),))
        injector = plan.injector()
        run_spmd(NR, ring_program, faults=injector)  # attempt 1: clean
        with pytest.raises(SpmdError):
            run_spmd(NR, ring_program, faults=injector)  # attempt 2: crash


class TestLinkFaults:
    def test_dropped_message_deadlocks_receiver_with_diagnostics(self):
        plan = FaultPlan(
            link_faults=(LinkFault(source=0, dest=1, drop_probability=1.0),)
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(NR, ring_program, faults=plan, timeout=1.0)
        assert "recv(source=0" in str(exc_info.value)
        events = [e for s in exc_info.value.stats for e in s.fault_events]
        assert any(e.kind == "drop" and e.rank == 0 for e in events)

    def test_corruption_detected_with_checksums(self):
        plan = FaultPlan(
            link_faults=(LinkFault(source=0, dest=1, corrupt_probability=1.0),)
        )
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(NR, ring_program, faults=plan, verify_checksums=True)
        assert isinstance(exc_info.value.exceptions[1], CorruptedMessage)
        events = [e for s in exc_info.value.stats for e in s.fault_events]
        kinds = {e.kind for e in events}
        assert "corrupt" in kinds  # injected at the sender
        assert "corruption-detected" in kinds  # caught at the receiver

    def test_corruption_is_silent_without_checksums(self):
        plan = FaultPlan(
            link_faults=(LinkFault(source=0, dest=1, corrupt_probability=1.0),)
        )
        poisoned = run_spmd(NR, ring_program, faults=plan)
        clean = run_spmd(NR, ring_program)
        assert poisoned.results != clean.results

    def test_time_window_gates_the_fault(self):
        """A fault window entirely after the run never fires."""
        clean = run_spmd(NR, ring_program)
        plan = FaultPlan(
            link_faults=(LinkFault(
                drop_probability=1.0, t_start=clean.makespan * 10,
            ),)
        )
        result = run_spmd(NR, ring_program, faults=plan)
        assert result.results == clean.results
        assert result.fault_events() == []


class TestDegradationAndStragglers:
    def test_degraded_window_inflates_makespan(self):
        clean = run_spmd(NR, ring_program)
        plan = FaultPlan(
            degraded=(DegradedWindow(0.0, 1e9, alpha_factor=5.0,
                                     beta_factor=5.0),)
        )
        slow = run_spmd(NR, ring_program, faults=plan)
        assert slow.makespan > clean.makespan
        assert slow.results == clean.results  # values unaffected
        assert any(e.kind == "degrade" for e in slow.fault_events())

    def test_straggler_slows_only_its_rank(self):
        clean = run_spmd(NR, ring_program)
        plan = FaultPlan(stragglers=(Straggler(rank=2, slowdown=10.0),))
        slow = run_spmd(NR, ring_program, faults=plan)
        assert slow.makespan > clean.makespan
        assert slow.results == clean.results
        compute = lambda r, i: r.stats[i].compute_time
        assert compute(slow, 2) == pytest.approx(10.0 * compute(clean, 2))

    def test_faults_injected_counter(self):
        plan = FaultPlan(stragglers=(Straggler(rank=1, slowdown=2.0),))
        result = run_spmd(NR, ring_program, faults=plan)
        assert result.stats[1].faults_injected >= 1
        assert result.critical_stats().faults_injected >= 1


class TestTraceIntegration:
    def test_fault_events_appear_in_gantt(self):
        from repro.simmpi.trace import render_gantt

        plan = FaultPlan(stragglers=(Straggler(rank=1, slowdown=4.0),))
        result = run_spmd(NR, ring_program, faults=plan, trace=True)
        chart = render_gantt(result.traces)
        assert "X" in chart
        assert "X fault" in chart  # legend
