"""Algorithm 2: the communication-avoiding core.

Correctness contract: CA == the serial core with the approximate nonlinear
iteration, on every feasible Y-Z decomposition; plus the communication
schedule claims (2 exchanges per step, 2M z-collectives per step).
"""
import pytest

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig
from repro.core.integrator import SerialCore
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState


def gather_states(decomp, results):
    blocks = [r.state for r in results]
    return ModelState(
        U=decomp.gather([b.U for b in blocks]),
        V=decomp.gather([b.V for b in blocks]),
        Phi=decomp.gather([b.Phi for b in blocks]),
        psa=decomp.gather([b.psa for b in blocks]),
    )


@pytest.fixture(scope="module")
def reference_m1():
    """M = 1 keeps the CA halos feasible on small blocks."""
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    nsteps = 4
    ref = SerialCore(
        grid, params=params, approximate_c=True, forcing=HeldSuarezForcing()
    ).run(state0, nsteps)
    return grid, params, state0, nsteps, ref


@pytest.fixture(scope="module")
def reference_m3():
    """M = 3 (the paper's setting) on blocks big enough for 11-wide halos."""
    grid = LatLonGrid(nx=16, ny=48, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0, m_iterations=3)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    nsteps = 3
    ref = SerialCore(
        grid, params=params, approximate_c=True, forcing=HeldSuarezForcing()
    ).run(state0, nsteps)
    return grid, params, state0, nsteps, ref


class TestEquivalenceM1:
    @pytest.mark.parametrize(
        "shape", [(1, 1, 1), (1, 2, 1), (1, 2, 2)],
        ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}",
    )
    def test_matches_serial_approximate(self, reference_m1, shape):
        grid, params, state0, nsteps, ref = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, *shape)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params,
            nsteps=nsteps, forcing=HeldSuarezForcing(),
        )
        res = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        gathered = gather_states(decomp, res.results)
        assert ref.max_difference(gathered) < 1e-11


class TestEquivalenceM3:
    @pytest.mark.parametrize(
        "shape", [(1, 1, 1), (1, 2, 1), (1, 3, 1)],
        ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}",
    )
    def test_matches_serial_approximate(self, reference_m3, shape):
        grid, params, state0, nsteps, ref = reference_m3
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, *shape)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params,
            nsteps=nsteps, forcing=HeldSuarezForcing(),
        )
        res = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        gathered = gather_states(decomp, res.results)
        assert ref.max_difference(gathered) < 1e-11


class TestCommunicationSchedule:
    def test_two_exchanges_per_step(self, reference_m1):
        """The paper's 13 -> 2 frequency reduction (Sec. 4.3.1/4.3.2)."""
        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        assert res.results[0].exchanges == 2 * nsteps

    def test_two_m_collectives_per_step(self, reference_m1):
        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        assert (
            res.results[0].c_calls
            == 2 * params.m_iterations * nsteps + 1  # + cold start
        )

    def test_fewer_messages_than_original(self, reference_m1):
        from repro.core.distributed import original_rank_program

        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res_ca = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        res_or = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        msgs_ca = sum(s.p2p_messages_sent for s in res_ca.stats)
        msgs_or = sum(s.p2p_messages_sent for s in res_or.stats)
        assert msgs_ca < msgs_or / 2

    def test_more_bytes_than_original(self, reference_m1):
        """CA trades volume for frequency: 'a little more communication
        volume' (Sec. 5.2) from wide halos, corners and the C bundle."""
        from repro.core.distributed import original_rank_program

        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res_ca = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        res_or = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        bytes_ca = sum(s.p2p_bytes_sent for s in res_ca.stats)
        bytes_or = sum(s.p2p_bytes_sent for s in res_or.stats)
        assert bytes_ca > bytes_or

    def test_rejects_xy_decomposition(self, reference_m1):
        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 2, 2, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        with pytest.raises(Exception):
            run_spmd(decomp.nranks, ca_rank_program, cfg, state0)

    def test_rejects_too_small_blocks(self, reference_m1):
        grid, params, state0, nsteps, _ = reference_m1
        # ny_local = 2 < gy = 5 for M = 1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 8, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        with pytest.raises(Exception):
            run_spmd(decomp.nranks, ca_rank_program, cfg, state0)


class TestOverlap:
    def test_stencil_wait_reduced_by_overlap(self, reference_m1):
        """The posted-early exchange overlaps the inner update: the CA
        core's stencil waiting time per exchange is below the original's."""
        from repro.core.distributed import original_rank_program

        grid, params, state0, nsteps, _ = reference_m1
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        res_ca = run_spmd(decomp.nranks, ca_rank_program, cfg, state0)
        res_or = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        wait_ca = max(
            s.tagged_time.get("stencil_comm", 0.0) for s in res_ca.stats
        )
        wait_or = max(
            s.tagged_time.get("stencil_comm", 0.0) for s in res_or.stats
        )
        assert wait_ca < wait_or
