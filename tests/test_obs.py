"""The unified observability layer: spans, metrics, telemetry, exporters.

The crown-jewel assertion lives in ``TestDriverIntegration``: with
observation on, the executed communication-avoiding core records exactly
2 halo-exchange spans per step per rank against the original Y-Z
program's 13 (+1 initial refresh) — the paper's Table 1 claim, read off
the wall-clock trace of the real run.
"""
import numpy as np
import pytest

from repro.core.driver import DynamicalCore
from repro.grid.latlon import LatLonGrid
from repro.obs.config import ObsConfig, Observation
from repro.obs.metrics import (
    MetricsRegistry,
    absorb_workspace_counters,
)
from repro.obs.spans import (
    NULL_SPAN,
    active_tracer,
    current_rank,
    set_active,
    set_rank,
    span,
    traced,
    tracing,
)
from repro.obs.telemetry import (
    TelemetryRecord,
    TelemetrySeries,
    block_partials,
    combine_partials,
    record_for_state,
)
from repro.state.variables import ModelState


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing globally disabled."""
    prev = set_active(None)
    yield
    set_active(prev)


def _random_state(grid, seed=7, amplitude=1.0):
    return ModelState.random(
        (grid.nz, grid.ny, grid.nx), np.random.default_rng(seed), amplitude
    )


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_shared_null(self):
        assert span("anything") is NULL_SPAN
        with span("anything", "cat"):
            pass  # must be a harmless no-op

    def test_tracing_scope_records_and_restores(self):
        assert active_tracer() is None
        with tracing() as t:
            assert active_tracer() is t
            with span("outer", "a"):
                with span("inner", "b"):
                    pass
        assert active_tracer() is None
        names = [(s.name, s.cat, s.depth) for s in t.spans]
        assert names == [("outer", "a", 0), ("inner", "b", 1)]

    def test_nesting_order_and_times(self):
        with tracing() as t:
            with span("outer"):
                with span("inner"):
                    pass
        outer = next(s for s in t.spans if s.name == "outer")
        inner = next(s for s in t.spans if s.name == "inner")
        assert outer.t_start <= inner.t_start
        assert inner.t_end <= outer.t_end
        assert outer.duration >= inner.duration >= 0.0

    def test_count_and_durations(self):
        with tracing() as t:
            for _ in range(3):
                with span("x", "k"):
                    pass
            with span("y", "k"):
                pass
        assert t.count("x") == 3
        assert t.count(cat="k") == 4
        assert t.count("x", "other") == 0
        assert len(t.durations("x")) == 3
        assert t.total_duration("x") == pytest.approx(
            sum(t.durations("x"))
        )

    def test_traced_decorator(self):
        @traced("fn-span", "deco")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5  # disabled: plain call
        with tracing() as t:
            assert add(2, 3) == 5
        assert t.count("fn-span", "deco") == 1
        assert add.__name__ == "add"

    def test_rank_labels_are_thread_local(self):
        assert current_rank() == -1
        prev = set_rank(5)
        try:
            assert current_rank() == 5
            with tracing() as t:
                with span("labelled"):
                    pass
            assert t.spans[0].rank == 5
        finally:
            set_rank(prev)
        assert current_rank() == -1

    def test_spans_merge_across_threads(self):
        import threading

        with tracing() as t:
            def work(r):
                prev = set_rank(r)
                try:
                    with span("w"):
                        pass
                finally:
                    set_rank(prev)

            threads = [
                threading.Thread(target=work, args=(r,)) for r in range(3)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        assert sorted(s.rank for s in t.spans) == [0, 1, 2]


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", "things that happened", rank="0")
        c.inc()
        c.inc(4)
        assert reg.counter("events_total", rank="0").value == 5.0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("n_total", rank="0").inc(1)
        reg.counter("n_total", rank="1").inc(2)
        d = reg.as_dict()["n_total"]
        assert [s["value"] for s in d["samples"]] == [1.0, 2.0]

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 100.0):
            h.observe(v)
        assert h.cumulative() == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert h.count == 5
        assert h.sum == pytest.approx(106.05)

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("msgs_total", "messages", rank="2").inc(7)
        reg.gauge("pool_bytes", rank="2").set(1024)
        h = reg.histogram("wait_seconds", buckets=(0.5, 2.0))
        h.observe(0.1)
        h.observe(1.0)
        text = reg.to_prometheus_text()
        assert "# HELP msgs_total messages" in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{rank="2"} 7' in text
        assert 'pool_bytes{rank="2"} 1024' in text
        assert 'wait_seconds_bucket{le="0.5"} 1' in text
        assert 'wait_seconds_bucket{le="2"} 2' in text
        assert 'wait_seconds_bucket{le="+Inf"} 2' in text
        assert "wait_seconds_count 2" in text

    def test_absorb_workspace_counters(self):
        reg = MetricsRegistry()
        counters = {"fresh_allocations": 10, "reuses": 90,
                    "pooled_bytes": 4096}
        absorb_workspace_counters(reg, counters, rank=3)
        absorb_workspace_counters(reg, counters, rank=3)  # chunked run
        assert reg.counter(
            "workspace_reuses_total", rank="3"
        ).value == 180.0
        # gauge: set wins, no accumulation
        assert reg.gauge(
            "workspace_pooled_bytes", rank="3"
        ).value == 4096.0


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_serial_record_matches_energy_budget(self):
        from repro.analysis.energy import energy_budget, global_mean_psa
        from repro.grid.sigma import SigmaLevels

        grid = LatLonGrid(12, 16, 6)
        sigma = SigmaLevels.uniform(grid.nz)
        state = _random_state(grid)
        rec = record_for_state(1, state, grid, sigma)
        budget = energy_budget(state, grid, sigma)
        assert rec.energy == pytest.approx(budget.total, rel=1e-12)
        assert rec.kinetic == pytest.approx(budget.kinetic, rel=1e-12)
        assert rec.mass == pytest.approx(
            global_mean_psa(state, grid), rel=1e-12
        )
        assert rec.finite

    def test_distributed_partials_match_serial(self):
        from repro.grid.decomposition import yz_decomposition
        from repro.grid.sigma import SigmaLevels

        grid = LatLonGrid(12, 16, 8)
        sigma = SigmaLevels.uniform(grid.nz)
        state = _random_state(grid)
        serial = record_for_state(3, state, grid, sigma)
        dec = yz_decomposition(grid.nx, grid.ny, grid.nz, 4)  # py*pz blocks
        partials = []
        for r in range(dec.nranks):
            ext = dec.extent(r)
            block = ModelState(
                U=state.U[ext.slices3d()].copy(),
                V=state.V[ext.slices3d()].copy(),
                Phi=state.Phi[ext.slices3d()].copy(),
                psa=state.psa[ext.slices2d()].copy(),
            )
            partials.append(block_partials(block, grid, sigma, extent=ext))
        combined = combine_partials(3, partials, grid)
        assert combined.mass == pytest.approx(serial.mass, rel=1e-12)
        assert combined.energy == pytest.approx(serial.energy, rel=1e-12)
        assert combined.surface_potential == pytest.approx(
            serial.surface_potential, rel=1e-12
        )
        assert combined.max_wind == pytest.approx(serial.max_wind)
        assert combined.max_abs == serial.max_abs

    def test_nonfinite_sentinel(self):
        from repro.grid.sigma import SigmaLevels

        grid = LatLonGrid(8, 8, 4)
        sigma = SigmaLevels.uniform(grid.nz)
        state = _random_state(grid)
        state.U[0, 0, 0] = np.nan
        rec = record_for_state(2, state, grid, sigma)
        assert not rec.finite

    def test_series_first_nonfinite_and_summary(self):
        series = TelemetrySeries()
        assert series.summary() == "telemetry: (empty)"
        assert series.first_nonfinite_step() is None

        def rec(step, finite=True):
            return TelemetryRecord(
                step=step, mass=0.0, energy=1.0, kinetic=1.0,
                available_potential=0.0, surface_potential=0.0,
                max_wind=1.0, max_abs=1.0, finite=finite,
            )

        series.extend([rec(1), rec(2, finite=False), rec(3, finite=False)])
        assert series.steps() == [1, 2, 3]
        assert series.first_nonfinite_step() == 2
        assert "NON-FINITE fields first seen at step 2" in series.summary()
        assert len(series.column("energy")) == 3


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def test_chrome_trace_round_trip_spans(self, tmp_path):
        from repro.obs.exporters import (
            duration_events,
            load_chrome_trace,
            write_chrome_trace,
        )

        with tracing() as t:
            with span("a", "x"):
                with span("b", "y"):
                    pass
        doc = Observation(config=ObsConfig(), tracer=t).chrome_trace()
        path = write_chrome_trace(tmp_path / "t.json", doc)
        back = load_chrome_trace(path)
        xs = duration_events(back)
        assert {e["name"] for e in xs} == {"a", "b"}
        assert all(e["dur"] >= 0 for e in xs)

    def test_jsonl_round_trip(self, tmp_path):
        from repro.grid.sigma import SigmaLevels
        from repro.obs.exporters import (
            jsonl_records,
            read_jsonl,
            write_jsonl,
        )

        grid = LatLonGrid(8, 8, 4)
        sigma = SigmaLevels.uniform(grid.nz)
        rec = record_for_state(1, _random_state(grid), grid, sigma)
        reg = MetricsRegistry()
        reg.counter("c_total", rank="0").inc(2)
        with tracing() as t:
            with span("s", "k"):
                pass
        path = write_jsonl(
            tmp_path / "e.jsonl",
            jsonl_records(
                spans=t.spans, telemetry=[rec], metrics=reg.as_dict()
            ),
        )
        records = read_jsonl(path)
        kinds = sorted(r["type"] for r in records)
        assert kinds == ["metric", "span", "telemetry"]
        telem = next(r for r in records if r["type"] == "telemetry")
        assert telem["energy"] == pytest.approx(rec.energy)

    def test_obs_config_coercion(self):
        assert ObsConfig.coerce(None) is None
        assert ObsConfig.coerce(False) is None
        assert isinstance(ObsConfig.coerce(True), ObsConfig)
        cfg = ObsConfig(telemetry=False)
        assert ObsConfig.coerce(cfg) is cfg
        with pytest.raises(TypeError):
            ObsConfig.coerce("yes")


# ---------------------------------------------------------------------------
# driver integration: the paper's exchange counts on the executed core
# ---------------------------------------------------------------------------
class TestDriverIntegration:
    NSTEPS = 2
    NPROCS = 2

    def _grid(self):
        # CA needs ny/p_y > 3M + 2 (gy = 11), hence the tall mesh
        return LatLonGrid(16, 24, 8)

    def test_observe_off_by_default(self):
        core = DynamicalCore(self._grid(), algorithm="serial")
        core.run(_random_state(self._grid()), 1)
        assert core.observation is None

    def test_serial_observed_run(self):
        grid = self._grid()
        core = DynamicalCore(grid, algorithm="serial", observe=True)
        core.run(_random_state(grid), self.NSTEPS)
        obs = core.observation
        assert obs.tracer.count("step", "step") == self.NSTEPS
        assert obs.tracer.count("C", "tendency") > 0
        assert obs.telemetry.steps() == list(range(1, self.NSTEPS + 1))
        assert "workspace_reuses_total" in obs.prometheus_text()
        # global tracer restored after the run
        assert active_tracer() is None

    def test_original_yz_halo_exchanges_per_step(self):
        grid = self._grid()
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=self.NPROCS, observe=True
        )
        core.run(_random_state(grid), self.NSTEPS)
        obs = core.observation
        n = obs.tracer.count("halo-exchange", "comm")
        # 13 per step per rank + 1 initial refresh per rank (Table 1)
        assert n == (13 * self.NSTEPS + 1) * self.NPROCS
        assert {s.rank for s in obs.spans if s.name == "halo-exchange"} == {
            0, 1,
        }

    def test_ca_two_exchanges_per_step(self):
        grid = self._grid()
        core = DynamicalCore(
            grid, algorithm="ca", nprocs=self.NPROCS, observe=True
        )
        core.run(_random_state(grid), self.NSTEPS)
        obs = core.observation
        n = obs.tracer.count("halo-exchange", "comm")
        assert n == 2 * self.NSTEPS * self.NPROCS
        # the fused final smoothing exchange: once per run per rank
        assert obs.tracer.count("smoothing-exchange") == self.NPROCS
        assert obs.telemetry.steps() == list(range(1, self.NSTEPS + 1))

    def test_distributed_telemetry_matches_serial(self):
        grid = self._grid()
        state0 = _random_state(grid)
        dist = DynamicalCore(
            grid, algorithm="original-yz", nprocs=self.NPROCS, observe=True
        )
        dist.run(state0, self.NSTEPS)
        ser = DynamicalCore(grid, algorithm="serial", observe=True)
        ser.run(state0, self.NSTEPS)
        for rd, rs in zip(
            dist.observation.telemetry.records,
            ser.observation.telemetry.records,
        ):
            assert rd.step == rs.step
            assert rd.energy == pytest.approx(rs.energy, rel=1e-9)
            assert rd.mass == pytest.approx(rs.mass, rel=1e-9, abs=1e-15)

    def test_output_files_written(self, tmp_path):
        grid = self._grid()
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=self.NPROCS,
            observe=ObsConfig(
                chrome_trace=tmp_path / "trace.json",
                jsonl=tmp_path / "events.jsonl",
            ),
        )
        core.run(_random_state(grid), 1)
        from repro.obs.exporters import (
            duration_events,
            load_chrome_trace,
            read_jsonl,
        )

        doc = load_chrome_trace(tmp_path / "trace.json")
        xs = duration_events(doc)
        # wall-clock spans AND logical-clock events: two process lanes
        assert {e["pid"] for e in xs} == {1, 2}
        records = read_jsonl(tmp_path / "events.jsonl")
        assert {r["type"] for r in records} == {
            "span", "telemetry", "metric",
        }

    def test_observation_accumulates_across_runs(self):
        grid = self._grid()
        core = DynamicalCore(grid, algorithm="serial", observe=True)
        s0 = _random_state(grid)
        core.run(s0, 1)
        core.run(s0, 1)
        assert core.observation.tracer.count("step") == 2

    def test_metrics_cover_comm_counters(self):
        grid = self._grid()
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=self.NPROCS, observe=True
        )
        _, diag = core.run(_random_state(grid), 1)
        reg = core.observation.registry
        total_sent = sum(
            reg.counter("simmpi_p2p_messages_sent_total", rank=str(r)).value
            for r in range(self.NPROCS)
        )
        assert total_sent == diag.p2p_messages


# ---------------------------------------------------------------------------
# resilience integration
# ---------------------------------------------------------------------------
class TestResilientObservation:
    def test_rollback_discards_staged_telemetry(self, tmp_path):
        from repro.core.resilience import ResilienceConfig
        from repro.simmpi.faults import CrashSpec, FaultPlan

        grid = LatLonGrid(16, 24, 8)
        state0 = _random_state(grid)
        plan = FaultPlan(
            seed=3, crashes=(CrashSpec(rank=1, at_call=5, at_attempt=1),)
        )
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=2, observe=True
        )
        rcfg = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_interval=2, faults=plan
        )
        final, _, report = core.run_resilient(state0, 4, rcfg)
        obs = core.observation
        assert report.nrestarts == 1
        # the failed attempt left no duplicate/partial records behind
        assert obs.telemetry.steps() == [1, 2, 3, 4]
        # a single crash recovers disklessly from the buddy mirror
        assert obs.tracer.count("buddy-restore", "resilience") == 1
        assert obs.tracer.count("rollback", "resilience") == 0
        assert obs.tracer.count("chunk", "resilience") == 3  # 2 ok + 1 retry
        ref, _ = DynamicalCore(
            grid, algorithm="original-yz", nprocs=2
        ).run(state0, 4)
        assert np.array_equal(final.U, ref.U)

    def test_blowup_guard_reads_staged_telemetry(self):
        from repro.core.resilience import ResilienceConfig, _blowup_detail

        grid = LatLonGrid(8, 8, 4)
        healthy = _random_state(grid)

        class StubCore:
            _staged_telemetry = [
                TelemetryRecord(
                    step=7, mass=0.0, energy=1.0, kinetic=1.0,
                    available_potential=0.0, surface_potential=0.0,
                    max_wind=1.0, max_abs=1.0, finite=False,
                )
            ]

        rcfg = ResilienceConfig(checkpoint_dir="unused")
        detail = _blowup_detail(StubCore(), healthy, rcfg)
        assert detail is not None and "step 7" in detail

        StubCore._staged_telemetry = []
        assert _blowup_detail(StubCore(), healthy, rcfg) is None

    def test_blowup_guard_threshold_from_telemetry(self):
        from repro.core.resilience import ResilienceConfig, _blowup_detail

        grid = LatLonGrid(8, 8, 4)
        healthy = _random_state(grid)

        class StubCore:
            _staged_telemetry = [
                TelemetryRecord(
                    step=2, mass=0.0, energy=1.0, kinetic=1.0,
                    available_potential=0.0, surface_potential=0.0,
                    max_wind=1.0, max_abs=5e9, finite=True,
                )
            ]

        rcfg = ResilienceConfig(
            checkpoint_dir="unused", blowup_threshold=1e8
        )
        detail = _blowup_detail(StubCore(), healthy, rcfg)
        assert detail is not None and "step 2" in detail


# ---------------------------------------------------------------------------
# report CLI
# ---------------------------------------------------------------------------
class TestReportCli:
    def _observed_outputs(self, tmp_path):
        grid = LatLonGrid(16, 24, 8)
        core = DynamicalCore(
            grid, algorithm="ca", nprocs=2,
            observe=ObsConfig(
                chrome_trace=tmp_path / "trace.json",
                jsonl=tmp_path / "events.jsonl",
            ),
        )
        core.run(_random_state(grid), 2)
        return tmp_path / "trace.json", tmp_path / "events.jsonl"

    def test_report_chrome_counts_exchanges(self, tmp_path, capsys):
        from repro.obs.report import main

        chrome, _ = self._observed_outputs(tmp_path)
        assert main([str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "Chrome trace" in out
        assert "halo exchanges per step: 2" in out

    def test_report_jsonl_shows_telemetry(self, tmp_path, capsys):
        from repro.obs.report import main

        _, jsonl = self._observed_outputs(tmp_path)
        assert main([str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "JSONL log" in out
        assert "telemetry steps 1..2" in out

    def test_report_missing_file_errors(self):
        from repro.obs.report import main

        with pytest.raises(SystemExit):
            main(["/nonexistent/path.json"])
