"""The transpose (alltoall) distributed polar filter."""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.integrator import SerialCore
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState


@pytest.fixture(scope="module")
def setting():
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    serial = SerialCore(
        grid, params=params, forcing=HeldSuarezForcing()
    ).run(state0, 2)
    return grid, params, state0, serial


def gather_states(decomp, results):
    blocks = [r.state for r in results]
    return ModelState(
        U=decomp.gather([b.U for b in blocks]),
        V=decomp.gather([b.V for b in blocks]),
        Phi=decomp.gather([b.Phi for b in blocks]),
        psa=decomp.gather([b.psa for b in blocks]),
    )


class TestTransposeFilter:
    @pytest.mark.parametrize("px", [2, 4])
    def test_matches_serial(self, setting, px):
        """The transpose method is a pure data-layout change: results
        must equal the serial reference to round-off."""
        grid, params, state0, serial = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, px, 2, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=2,
            forcing=HeldSuarezForcing(), filter_method="transpose",
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        gathered = gather_states(decomp, res.results)
        assert serial.max_difference(gathered) < 1e-10

    def test_less_fft_compute_than_allgather(self, setting):
        """Work sharing: the transpose method charges ~1/p_x of the
        replicated method's FFT compute."""
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 4, 2, 1)
        totals = {}
        for method in ("allgather", "transpose"):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=1,
                filter_method=method,
            )
            res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
            totals[method] = sum(s.compute_time for s in res.stats)
        assert totals["transpose"] < totals["allgather"]

    def test_two_collectives_per_filtered_field(self, setting):
        """Forward + backward transpose = 2 alltoalls where the
        allgather method pays 1 collective."""
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 2, 2, 1)
        ops = {}
        for method in ("allgather", "transpose"):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=1,
                filter_method=method,
            )
            res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
            ops[method] = max(s.collective_ops for s in res.stats)
        assert ops["transpose"] == 2 * ops["allgather"]

    def test_invalid_method_rejected(self, setting):
        grid, params, state0, _ = setting
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 2, 2, 1)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, filter_method="morse"
        )
        with pytest.raises(Exception):
            run_spmd(decomp.nranks, original_rank_program, cfg, state0)


class TestAlltoallPrimitive:
    def test_transpose_roundtrip(self):
        """alltoall twice with transposed block layout restores the data."""
        def prog(comm):
            sub = comm.world_comm()
            rng = np.random.default_rng(comm.rank)
            mine = rng.standard_normal((comm.size, 5))
            got = sub.alltoall([mine[i] for i in range(comm.size)])
            back = sub.alltoall(got)
            return bool(
                all(np.allclose(back[i], mine[i]) for i in range(comm.size))
            )

        from repro.simmpi import run_spmd as rs

        res = rs(4, prog)
        assert all(res.results)

    def test_block_count_validated(self):
        def prog(comm):
            comm.world_comm().alltoall([np.zeros(2)])

        from repro.simmpi import run_spmd as rs

        with pytest.raises(Exception):
            rs(3, prog, timeout=2.0)
