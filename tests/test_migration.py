"""Re-decomposition planning and live block migration."""
import numpy as np
import pytest

from repro.core.buddy import buddy_of
from repro.core.migrate import migrate_state
from repro.grid.decomposition import (
    plan_migration,
    redecompose,
    xy_decomposition,
    yz_decomposition,
)
from repro.simmpi.membership import MembershipView
from repro.state.variables import ModelState

NX, NY, NZ = 16, 32, 6


@pytest.fixture(scope="module")
def state():
    rng = np.random.default_rng(42)
    return ModelState(
        U=rng.standard_normal((NZ, NY, NX)),
        V=rng.standard_normal((NZ, NY, NX)),
        Phi=rng.standard_normal((NZ, NY, NX)),
        psa=rng.standard_normal((NY, NX)),
    )


class TestRedecompose:
    def test_yz_family_is_preserved(self):
        old = yz_decomposition(NX, NY, NZ, 4)
        new = redecompose(old, 3)
        assert new.kind == old.kind
        assert new.nranks == 3
        assert (new.nx, new.ny, new.nz) == (old.nx, old.ny, old.nz)

    def test_xy_family_is_preserved(self):
        old = xy_decomposition(NX, NY, NZ, 4)
        assert redecompose(old, 2).kind == old.kind

    def test_shrink_to_one_rank_is_serial(self):
        old = yz_decomposition(NX, NY, NZ, 4)
        assert redecompose(old, 1).nranks == 1


class TestPlanMigration:
    @pytest.mark.parametrize("old_n,new_n", [(4, 3), (4, 4), (3, 4), (5, 2)])
    def test_plan_covers_every_cell_exactly_once(self, old_n, new_n):
        old = yz_decomposition(NX, NY, NZ, old_n)
        new = redecompose(old, new_n)
        transfers = plan_migration(old, new)
        assert sum(t.region.cells for t in transfers) == NX * NY * NZ
        # every region lies inside both its old and its new owner's block
        for t in transfers:
            assert t.region.overlap(old.extent(t.old_owner)) == t.region
            assert t.region.overlap(new.extent(t.new_owner)) == t.region

    def test_plan_is_canonically_ordered(self):
        old = yz_decomposition(NX, NY, NZ, 4)
        new = redecompose(old, 3)
        transfers = plan_migration(old, new)
        keys = [(t.new_owner, t.old_owner) for t in transfers]
        assert keys == sorted(keys)

    def test_identity_plan_has_no_cross_owner_moves(self):
        d = yz_decomposition(NX, NY, NZ, 4)
        assert all(
            t.old_owner == t.new_owner for t in plan_migration(d, d)
        )

    def test_mismatched_meshes_rejected(self):
        old = yz_decomposition(NX, NY, NZ, 4)
        other = yz_decomposition(NX, NY, NZ * 2, 4)
        with pytest.raises(ValueError):
            plan_migration(old, other)


class TestMigrateState:
    def test_shrink_migration_is_bit_identical(self, state):
        old = yz_decomposition(NX, NY, NZ, 4)
        plan = MembershipView(4).rebuild((1,), "shrink")
        new = redecompose(old, plan.new_size)
        carrier = {
            o: plan.rank_map[buddy_of(o, 4) if o == 1 else o]
            for o in range(4)
        }
        migrated, rep = migrate_state(state, old, new, carrier)
        assert migrated.max_difference(state) == 0.0
        assert rep.makespan > 0.0
        assert rep.p2p_messages > 0
        assert rep.moved_cells > 0

    def test_spare_migration_moves_only_the_lost_block(self, state):
        old = yz_decomposition(NX, NY, NZ, 4)
        carrier = {o: (buddy_of(o, 4) if o == 2 else o) for o in range(4)}
        migrated, rep = migrate_state(state, old, old, carrier)
        assert migrated.max_difference(state) == 0.0
        assert rep.nmoves == 1
        assert rep.moved_cells == old.extent(2).cells

    def test_root_scatter_after_disk_rollback(self, state):
        old = yz_decomposition(NX, NY, NZ, 4)
        new = redecompose(old, 2)
        carrier = {o: 0 for o in range(4)}
        migrated, rep = migrate_state(state, old, new, carrier)
        assert migrated.max_difference(state) == 0.0
        assert rep.p2p_messages > 0

    def test_migration_is_deterministic(self, state):
        old = yz_decomposition(NX, NY, NZ, 5)
        new = redecompose(old, 3)
        carrier = {o: o % 3 for o in range(5)}
        a = migrate_state(state, old, new, carrier)
        b = migrate_state(state, old, new, carrier)
        assert a[0].max_difference(b[0]) == 0.0
        assert a[1].makespan == b[1].makespan
        assert a[1].p2p_bytes == b[1].p2p_bytes

    def test_missing_carrier_rejected(self, state):
        old = yz_decomposition(NX, NY, NZ, 4)
        with pytest.raises(ValueError, match="no carrier"):
            migrate_state(state, old, old, {0: 0, 1: 1, 2: 2})

    def test_out_of_world_carrier_rejected(self, state):
        old = yz_decomposition(NX, NY, NZ, 4)
        new = redecompose(old, 2)
        with pytest.raises(ValueError, match="outside the new world"):
            migrate_state(state, old, new, {o: 3 for o in range(4)})
