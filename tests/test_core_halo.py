"""Direct unit tests of the halo exchange machinery."""
import numpy as np
import pytest

from repro.core.halo import AntipodalPoleExchanger, HaloExchanger, _axis_slices
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.simmpi import run_spmd


class TestAxisSlices:
    def test_interior(self):
        assert _axis_slices(8, 2, 0, "send") == slice(2, 10)

    def test_low_face(self):
        assert _axis_slices(8, 2, -1, "send") == slice(2, 4)
        assert _axis_slices(8, 2, -1, "recv") == slice(0, 2)

    def test_high_face(self):
        assert _axis_slices(8, 2, +1, "send") == slice(8, 10)
        assert _axis_slices(8, 2, +1, "recv") == slice(10, 12)

    def test_partial_width(self):
        assert _axis_slices(8, 3, -1, "send", w=1) == slice(3, 4)
        assert _axis_slices(8, 3, -1, "recv", w=1) == slice(2, 3)
        assert _axis_slices(8, 3, +1, "send", w=2) == slice(9, 11)
        assert _axis_slices(8, 3, +1, "recv", w=2) == slice(11, 13)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            _axis_slices(8, 2, -1, "send", w=3)
        with pytest.raises(ValueError):
            _axis_slices(2, 3, -1, "send", w=3)


class TestYZExchange:
    def test_ghosts_filled_with_neighbour_interior(self):
        """Fill each rank's array with its rank id; after the exchange
        every ghost zone holds the owning neighbour's id."""
        grid = LatLonGrid(nx=8, ny=12, nz=9)
        sigma = SigmaLevels.uniform(9)
        decomp = Decomposition(8, 12, 9, 1, 3, 3)

        def prog(comm):
            ext = decomp.extent(comm.rank)
            geom = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=2)
            halo = HaloExchanger(comm, decomp, geom)
            a = np.full(geom.shape3d, float(comm.rank))
            halo.exchange([a])
            # check the y-face ghost against the actual neighbour
            checks = []
            for (dy, dz), nb in decomp.plane_neighbours(comm.rank).items():
                zs = slice(2, 2 + ext.nz) if dz == 0 else (
                    slice(0, 2) if dz < 0 else slice(2 + ext.nz, None)
                )
                ys = slice(2, 2 + ext.ny) if dy == 0 else (
                    slice(0, 2) if dy < 0 else slice(2 + ext.ny, None)
                )
                block = a[zs, ys, :]
                checks.append(bool(np.all(block == float(nb))))
            return all(checks)

        res = run_spmd(decomp.nranks, prog)
        assert all(res.results)

    def test_partial_width_leaves_outer_ghosts(self):
        grid = LatLonGrid(nx=8, ny=12, nz=4)
        sigma = SigmaLevels.uniform(4)
        decomp = Decomposition(8, 12, 4, 1, 2, 1)

        def prog(comm):
            ext = decomp.extent(comm.rank)
            geom = WorkingGeometry.build(grid, sigma, ext, gy=3, gz=0)
            halo = HaloExchanger(comm, decomp, geom)
            a = np.full(geom.shape3d, float(comm.rank))
            halo.exchange([a], wy=1)
            if comm.rank == 0:
                # only the innermost south ghost row was refreshed
                return (
                    float(a[0, 3 + ext.ny, 0]),  # refreshed
                    float(a[0, 3 + ext.ny + 1, 0]),  # untouched
                )
            return None

        res = run_spmd(2, prog)
        assert res.results[0] == (1.0, 0.0)

    def test_overlap_start_finish(self):
        """Computation between start and finish does not corrupt data."""
        grid = LatLonGrid(nx=8, ny=8, nz=4)
        sigma = SigmaLevels.uniform(4)
        decomp = Decomposition(8, 8, 4, 1, 2, 1)

        def prog(comm):
            ext = decomp.extent(comm.rank)
            geom = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=0)
            halo = HaloExchanger(comm, decomp, geom)
            a = np.full(geom.shape3d, float(comm.rank))
            pending = halo.start([a])
            comm.compute(1e-3)
            halo.finish(pending, [a])
            side = slice(0, 2) if comm.rank == 1 else slice(-2, None)
            return bool(np.all(a[:, side, :] == float(1 - comm.rank)))

        res = run_spmd(2, prog)
        assert all(res.results)


class TestAntipodal:
    def test_requires_even_equal_blocks(self):
        grid = LatLonGrid(nx=12, ny=8, nz=4)
        sigma = SigmaLevels.uniform(4)
        decomp = Decomposition(12, 8, 4, 3, 1, 1)

        def prog(comm):
            ext = decomp.extent(comm.rank)
            geom = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=0, gx=2)
            AntipodalPoleExchanger(comm, decomp, geom)

        with pytest.raises(Exception):
            run_spmd(3, prog)

    def test_scalar_mirror_roundtrip(self):
        """The antipodal fill must equal the local mirror of the
        assembled global field."""
        grid = LatLonGrid(nx=16, ny=6, nz=2)
        sigma = SigmaLevels.uniform(2)
        decomp = Decomposition(16, 6, 2, 2, 1, 1)
        rng = np.random.default_rng(3)
        global_field = rng.standard_normal((2, 6, 16))

        def prog(comm):
            ext = decomp.extent(comm.rank)
            geom = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=0, gx=2)
            a = np.zeros(geom.shape3d)
            # place interior + x-ghosts (periodic wrap) from the global field
            gx, gy = geom.gx, geom.gy
            cols = [(ext.x0 - gx + i) % 16 for i in range(ext.nx + 2 * gx)]
            a[:, gy:gy + ext.ny, :] = global_field[:, :, cols]
            anti = AntipodalPoleExchanger(comm, decomp, geom)
            anti.fill([(a, "scalar")])
            # ghost row gy-1 must equal the half-circle-rolled row 0
            mirror = np.roll(global_field[:, 0, :], 8, axis=-1)
            got = a[:, gy - 1, :]
            expected = mirror[:, cols]
            return bool(np.allclose(got, expected))

        res = run_spmd(2, prog)
        assert all(res.results)
