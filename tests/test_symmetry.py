"""Hemispheric symmetry: the whole operator stack must commute with the
equatorial mirror.

The continuous equations, the H-S forcing and the mesh are symmetric
under reflection about the equator (with the meridional wind flipping
sign).  A symmetric initial state must therefore stay symmetric through
full model steps — a sharp end-to-end test of the metric terms, the
staggered differences, the pole conditions and the filter, since any
index-offset bug breaks it immediately.

A bounded residual asymmetry of ~1e-8 relative remains: floating-point
rounding of the per-row FFTs does not commute with the mirror.  It
oscillates without growth over long runs (measured), so the tolerance is
set an order above it — still far below what any real stencil bug
produces (O(1) relative).
"""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, rest_state
from repro.state.variables import ModelState


def mirror(state: ModelState) -> ModelState:
    """Reflect about the equator: centre rows reverse; V rows (interfaces)
    reverse about the interface grid and flip sign.

    With ny centre rows, V row j (interface j+1/2) maps to interface
    ny-1-j-1/2 = V row ny-2-j; the south-pole interface row (ny-1) maps to
    the north-pole interface, which is not stored — it is zero, as the
    mirrored row must be.
    """
    U = state.U[:, ::-1, :].copy()
    Phi = state.Phi[:, ::-1, :].copy()
    psa = state.psa[::-1, :].copy()
    V = np.zeros_like(state.V)
    V[:, :-1, :] = -state.V[:, -2::-1, :]
    V[:, -1, :] = 0.0
    return ModelState(U=U, V=V, Phi=Phi, psa=psa)


def symmetrize(state: ModelState) -> ModelState:
    """Average a state with its mirror image."""
    m = mirror(state)
    return 0.5 * (state + m)


def asymmetry(state: ModelState) -> float:
    return state.max_difference(mirror(state))


@pytest.fixture(scope="module")
def symmetric_setting():
    grid = LatLonGrid(nx=32, ny=16, nz=6)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
    # a symmetric non-trivial state: warm equatorial band + symmetric
    # pressure ridge, then explicitly symmetrized
    state = rest_state(grid)
    j = np.arange(grid.ny)
    band = np.exp(-((j - (grid.ny - 1) / 2) / 3.0) ** 2)
    state.Phi[:] = 3.0 * band[None, :, None] * (
        1.0 + 0.3 * np.cos(2 * grid.lon)[None, None, :]
    )
    state.psa[:] = 80.0 * band[:, None] * np.cos(3 * grid.lon)[None, :]
    state = symmetrize(state)
    assert asymmetry(state) < 1e-14
    return grid, params, state


class TestMirrorHelper:
    def test_involution(self, symmetric_setting, rng):
        grid, _, _ = symmetric_setting
        from repro.physics import balanced_random_state

        s = balanced_random_state(grid, rng)
        s.V[:, -1, :] = 0.0
        twice = mirror(mirror(s))
        assert s.max_difference(twice) == 0.0


class TestSymmetryPreservation:
    def test_unforced_step_preserves_symmetry(self, symmetric_setting):
        grid, params, state = symmetric_setting
        core = SerialCore(grid, params=params)
        out = core.run(state, 3)
        scale = max(out.max_abs(), 1e-30)
        assert asymmetry(out) < 1e-7 * scale

    def test_forced_step_preserves_symmetry(self, symmetric_setting):
        grid, params, state = symmetric_setting
        core = SerialCore(grid, params=params, forcing=HeldSuarezForcing())
        out = core.run(state, 3)
        scale = max(out.max_abs(), 1e-30)
        assert asymmetry(out) < 1e-7 * scale

    def test_approximate_core_preserves_symmetry(self, symmetric_setting):
        grid, params, state = symmetric_setting
        core = SerialCore(grid, params=params, approximate_c=True)
        out = core.run(state, 3)
        scale = max(out.max_abs(), 1e-30)
        assert asymmetry(out) < 1e-7 * scale

    def test_asymmetric_state_detected(self, symmetric_setting):
        """Sanity: the metric actually sees asymmetry."""
        grid, params, state = symmetric_setting
        bad = state.copy()
        bad.Phi[0, 2, 5] += 1.0
        assert asymmetry(bad) > 0.5
