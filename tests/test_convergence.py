"""Numerical convergence of the time integration.

The 3-internal-update scheme of Algorithm 1 is (for linear dynamics) a
third-order Runge-Kutta expansion (Eq. 12); refining dt must therefore
converge and at better-than-first order toward the fine-dt trajectory.
"""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.physics import perturbed_rest_state


@pytest.fixture(scope="module")
def setting():
    grid = LatLonGrid(nx=32, ny=16, nz=6)
    state0 = perturbed_rest_state(grid, amplitude_k=1.0)
    return grid, state0


def run_to_time(grid, state0, dt1, t_end, beta=0.0):
    """Integrate to a fixed physical time with adaptation step dt1."""
    params = ModelParameters(
        dt_adaptation=dt1, dt_advection=3 * dt1, m_iterations=3,
        smoothing_beta=beta, smoothing_beta_y_uv=beta,
    )
    nsteps = int(round(t_end / params.dt_advection))
    core = SerialCore(grid, params=params)
    return core.run(state0, nsteps)


class TestTimeConvergence:
    def test_dt_refinement_converges(self, setting):
        """Errors vs the finest run shrink monotonically with dt.

        Smoothing is disabled: it is applied per *step*, so its damping is
        dt-dependent by design and would mask the integrator's
        convergence.
        """
        grid, state0 = setting
        t_end = 3600.0  # one model hour
        fine = run_to_time(grid, state0, 25.0, t_end)
        errs = []
        for dt1 in (200.0, 100.0, 50.0):
            coarse = run_to_time(grid, state0, dt1, t_end)
            errs.append(coarse.max_difference(fine))
        assert errs[0] > errs[1] > errs[2]

    def test_convergence_order_at_least_one(self, setting):
        grid, state0 = setting
        t_end = 3600.0
        fine = run_to_time(grid, state0, 25.0, t_end)
        e200 = run_to_time(grid, state0, 200.0, t_end).max_difference(fine)
        e100 = run_to_time(grid, state0, 100.0, t_end).max_difference(fine)
        order = np.log2(e200 / e100)
        assert order > 0.9

    def test_same_dt_is_deterministic(self, setting):
        grid, state0 = setting
        a = run_to_time(grid, state0, 100.0, 1800.0)
        b = run_to_time(grid, state0, 100.0, 1800.0)
        assert a.max_difference(b) == 0.0


class TestVerticalLevels:
    def test_stretched_levels_run_stably(self, setting):
        """The cores accept non-uniform sigma spacing."""
        grid, state0 = setting
        params = ModelParameters(dt_adaptation=100.0, dt_advection=300.0)
        core = SerialCore(
            grid, sigma=SigmaLevels.stretched(grid.nz, 2.0), params=params
        )
        out = core.run(state0, 5)
        assert out.isfinite()

    def test_stretched_vs_uniform_differ(self, setting):
        """Level placement is physically meaningful: results differ."""
        grid, state0 = setting
        params = ModelParameters(dt_adaptation=100.0, dt_advection=300.0)
        uni = SerialCore(
            grid, sigma=SigmaLevels.uniform(grid.nz), params=params
        ).run(state0, 5)
        st = SerialCore(
            grid, sigma=SigmaLevels.stretched(grid.nz, 2.0), params=params
        ).run(state0, 5)
        assert uni.max_difference(st) > 0.0

    def test_distributed_with_stretched_levels(self, setting):
        from repro.core.distributed import (
            DistributedConfig, original_rank_program,
        )
        from repro.grid.decomposition import Decomposition
        from repro.simmpi import run_spmd
        from repro.state.variables import ModelState

        grid, state0 = setting
        params = ModelParameters(dt_adaptation=100.0, dt_advection=300.0)
        sigma = SigmaLevels.stretched(grid.nz, 2.0)
        serial = SerialCore(grid, sigma=sigma, params=params).run(state0, 2)
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, sigma=sigma, nsteps=2
        )
        res = run_spmd(decomp.nranks, original_rank_program, cfg, state0)
        blocks = [r.state for r in res.results]
        gathered = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
        assert serial.max_difference(gathered) < 1e-12
