"""The DynamicalCore facade."""
import pytest

from repro.core.driver import CoreConfig, DynamicalCore
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state


@pytest.fixture(scope="module")
def setting():
    from repro.constants import ModelParameters

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    return grid, params, state0


class TestConfig:
    def test_rejects_unknown_algorithm(self, setting):
        grid, params, _ = setting
        with pytest.raises(ValueError):
            DynamicalCore(grid, algorithm="magic", params=params)

    def test_serial_needs_one_rank(self, setting):
        grid, params, _ = setting
        with pytest.raises(ValueError):
            DynamicalCore(grid, algorithm="serial", nprocs=4, params=params)

    def test_decomposition_resolution(self, setting):
        grid, params, _ = setting
        cfg = CoreConfig(grid=grid, algorithm="original-yz", nprocs=4, params=params)
        d = cfg.resolve_decomposition()
        assert d.px == 1 and d.nranks == 4
        cfg = CoreConfig(grid=grid, algorithm="original-xy", nprocs=4, params=params)
        assert cfg.resolve_decomposition().pz == 1


class TestRuns:
    def test_serial_run(self, setting):
        grid, params, state0 = setting
        core = DynamicalCore(
            grid, algorithm="serial", params=params, forcing=HeldSuarezForcing()
        )
        out, diag = core.run(state0, 2)
        assert out.isfinite()
        assert diag.c_calls == 3 * params.m_iterations * 2

    @pytest.mark.parametrize(
        "alg", ["original-yz", "original-xy", "original-3d", "ca"]
    )
    def test_distributed_agree_with_serial_family(self, setting, alg):
        grid, params, state0 = setting
        serial_out, _ = DynamicalCore(
            grid, algorithm="serial", params=params,
            forcing=HeldSuarezForcing(),
        ).run(state0, 2)
        out, diag = DynamicalCore(
            grid, algorithm=alg, nprocs=4, params=params,
            forcing=HeldSuarezForcing(),
        ).run(state0, 2)
        assert out.isfinite()
        err = serial_out.max_difference(out)
        if alg == "ca":
            # approximate nonlinear iteration: small but nonzero deviation
            assert err < 1e-2
        else:
            assert err < 1e-12
        assert diag.makespan > 0
        assert diag.p2p_messages > 0

    def test_diagnostics_breakdown(self, setting):
        grid, params, state0 = setting
        _, diag = DynamicalCore(
            grid, algorithm="original-yz", nprocs=4, params=params,
        ).run(state0, 1)
        assert diag.comm_time == pytest.approx(
            diag.stencil_comm_time + diag.collective_comm_time
        )
        assert 0.0 <= diag.comm_fraction <= 1.0
        # M = 1: (3M + 3 + 1) = 7 per step, plus the initial refresh
        assert diag.exchanges == 7 + 1

    def test_ca_schedule_via_driver(self, setting):
        grid, params, state0 = setting
        _, diag = DynamicalCore(
            grid, algorithm="ca", nprocs=4, params=params,
        ).run(state0, 3)
        assert diag.exchanges == 2 * 3
        assert diag.c_calls == 2 * params.m_iterations * 3 + 1
