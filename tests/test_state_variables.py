"""The ModelState container."""
import numpy as np
import pytest

from repro.state.variables import ModelState


class TestConstruction:
    def test_zeros(self):
        s = ModelState.zeros((3, 4, 5))
        assert s.U.shape == (3, 4, 5)
        assert s.psa.shape == (4, 5)
        assert s.max_abs() == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ModelState(
                U=np.zeros((3, 4, 5)),
                V=np.zeros((3, 4, 5)),
                Phi=np.zeros((3, 4, 6)),
                psa=np.zeros((4, 5)),
            )
        with pytest.raises(ValueError):
            ModelState(
                U=np.zeros((3, 4, 5)),
                V=np.zeros((3, 4, 5)),
                Phi=np.zeros((3, 4, 5)),
                psa=np.zeros((4, 6)),
            )

    def test_random(self, rng):
        s = ModelState.random((2, 3, 4), rng)
        assert s.isfinite()
        assert s.max_abs() > 0


class TestArithmetic:
    def test_add_sub(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        b = ModelState.random((2, 3, 4), rng)
        c = (a + b) - b
        assert c.allclose(a, rtol=1e-14, atol=1e-14)

    def test_scalar_mul(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        assert (2.0 * a).allclose(a + a, rtol=1e-14, atol=1e-15)

    def test_axpy_matches_expression(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        b = ModelState.random((2, 3, 4), rng)
        assert a.axpy(0.5, b).allclose(a + 0.5 * b, rtol=1e-15, atol=1e-15)

    def test_axpy_inplace_mutates(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        b = ModelState.random((2, 3, 4), rng)
        expected = a + 0.25 * b
        out = a.axpy_inplace(0.25, b)
        assert out is a
        assert a.allclose(expected, rtol=1e-15, atol=1e-15)

    def test_midpoint(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        b = ModelState.random((2, 3, 4), rng)
        m = ModelState.midpoint(a, b)
        assert m.allclose(0.5 * (a + b), rtol=1e-15, atol=1e-15)

    def test_copy_is_deep(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        c = a.copy()
        c.U += 1.0
        assert not a.allclose(c)


class TestPacking:
    def test_roundtrip(self, rng):
        a = ModelState.random((3, 5, 7), rng)
        buf = a.pack()
        b = ModelState.unpack(buf, (3, 5, 7))
        assert a.allclose(b, rtol=0, atol=0)

    def test_unpack_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ModelState.unpack(np.zeros(10), (3, 5, 7))

    def test_nbytes(self):
        s = ModelState.zeros((2, 3, 4))
        assert s.nbytes == 8 * (3 * 24 + 12)


class TestMetrics:
    def test_max_difference(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        b = a.copy()
        b.Phi[0, 0, 0] += 3.0
        assert a.max_difference(b) == pytest.approx(3.0)

    def test_isfinite_detects_nan(self, rng):
        a = ModelState.random((2, 3, 4), rng)
        assert a.isfinite()
        a.V[1, 2, 3] = np.nan
        assert not a.isfinite()
