"""Property-based tests: the smoothing offset split is exact for any
coefficients and fields — the identity behind the former/later fusion."""
import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.operators.smoothing import (
    FieldSmoother,
    OFFSETS_FULL,
    OFFSETS_L,
    OFFSETS_L_PRIME,
    OFFSETS_R,
    OFFSETS_R_PRIME,
)

fields = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 3), st.integers(5, 12), st.integers(5, 12)),
    elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
)

betas = st.floats(0.0, 1.0, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(a=fields, bx=betas, by=betas, cross=st.booleans())
def test_offset_decomposition_exact(a, bx, by, cross):
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    total = sm.partial(a, OFFSETS_FULL)
    full = sm.full(a)
    assert np.allclose(total, full, rtol=1e-12, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(a=fields, bx=betas, by=betas)
def test_former_plus_later_is_full(a, bx, by):
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=True)
    full = sm.full(a)
    for former, later in (
        (OFFSETS_L, OFFSETS_L_PRIME),
        (OFFSETS_R, OFFSETS_R_PRIME),
    ):
        split = sm.partial(a, former) + sm.partial(a, later)
        assert np.allclose(split, full, rtol=1e-12, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(a=fields, bx=betas, by=betas, cross=st.booleans())
def test_constant_fields_invariant(a, bx, by, cross):
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    const = np.full_like(a, 3.25)
    out = sm.full(const)
    # delta^4 of a constant is zero everywhere (periodic roll included)
    assert np.allclose(out, const, rtol=1e-12, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(a=fields, bx=st.floats(0.01, 0.5), by=st.floats(0.01, 0.5))
def test_smoothing_is_linear(a, bx, by):
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=True)
    out2 = sm.full(2.0 * a)
    assert np.allclose(out2, 2.0 * sm.full(a), rtol=1e-12, atol=1e-8)
