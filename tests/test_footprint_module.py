"""The footprint prober itself."""
import numpy as np

from repro.operators.footprint import Footprint, probe_footprint
from repro.operators.shifts import sx, sy, sz


class TestProbe:
    def test_identity_operator(self):
        fp = probe_footprint(lambda a: a.copy(), (4, 6, 8))
        assert fp.x == (0,) and fp.y == (0,) and fp.z == (0,)

    def test_shift_operator(self):
        # out[i] = a[i+2] -> output depends on input offset +2
        fp = probe_footprint(lambda a: sx(a, 2), (4, 6, 8))
        assert fp.x == (2,)

    def test_centered_difference(self):
        fp = probe_footprint(lambda a: sx(a, 1) - sx(a, -1), (4, 6, 8))
        assert set(fp.x) == {-1, 1}

    def test_3d_stencil(self):
        def op(a):
            return a + sy(a, 1) + sz(a, -1)

        fp = probe_footprint(op, (4, 6, 8))
        assert set(fp.x) == {0}
        assert set(fp.y) == {0, 1}
        assert set(fp.z) == {-1, 0}

    def test_periodic_wrap_normalized(self):
        """A shift near the seam reports the short-way offset."""
        fp = probe_footprint(
            lambda a: sx(a, 3), (2, 4, 8), probe_point=(1, 2, 1)
        )
        assert fp.x == (3,)

    def test_zero_operator(self):
        fp = probe_footprint(lambda a: np.zeros_like(a), (2, 4, 6))
        assert fp.x == () and fp.y == () and fp.z == ()

    def test_nonlinear_operator_probed_at_base(self):
        fp = probe_footprint(lambda a: a**2 + sy(a, -1) * a, (2, 6, 6))
        assert set(fp.y) == {-1, 0}


class TestFootprintType:
    def test_within(self):
        fp = Footprint(x=(-1, 0, 1), y=(0,), z=(0,))
        assert fp.within(x=(-2, -1, 0, 1, 2), y=(0, 1), z=(0,))
        assert not fp.within(x=(0, 1), y=(0,), z=(0,))

    def test_radii(self):
        fp = Footprint(x=(-3, 0, 2), y=(0, 1), z=())
        assert fp.radii == (3, 1, 0)
