"""Workspace pool unit tests + bit-identity of the pooled fast paths.

The contract of the performance pass is *exact* reproducibility: with
``use_workspace=True`` (the default) every core must produce the same
bits as the seed allocating implementation, for multi-step trajectories,
on every algorithm variant.  These tests assert ``==`` equality, not
``allclose``.
"""
import numpy as np
import pytest

from repro.core.driver import DynamicalCore
from repro.core.integrator import SerialCore
from repro.core.workspace import StateRing, Workspace
from repro.grid.latlon import LatLonGrid
from repro.operators.shifts import roll_into
from repro.physics.initial import balanced_random_state, perturbed_rest_state
from repro.state.variables import ModelState


# ---------------------------------------------------------------------------
# Workspace pool mechanics
# ---------------------------------------------------------------------------
class TestWorkspacePool:
    def test_take_give_recycles_by_shape(self):
        ws = Workspace()
        a = ws.take((3, 4))
        ws.give(a)
        b = ws.take((3, 4))
        assert b is a
        assert ws.fresh_allocations == 1
        assert ws.reuses == 1

    def test_distinct_shapes_do_not_mix(self):
        ws = Workspace()
        a = ws.take((3, 4))
        ws.give(a)
        b = ws.take((4, 3))
        assert b is not a
        assert ws.fresh_allocations == 2

    def test_dtype_keys_separate(self):
        ws = Workspace()
        a = ws.take((5,), np.float64)
        ws.give(a)
        b = ws.take((5,), np.float32)
        assert b.dtype == np.float32
        assert b is not a

    def test_double_give_rejected(self):
        ws = Workspace()
        a = ws.take((2, 2))
        ws.give(a)
        with pytest.raises(ValueError, match="double give"):
            ws.give(a)

    def test_view_rejected(self):
        ws = Workspace()
        a = ws.take((4, 4))
        with pytest.raises(ValueError, match="view"):
            ws.give(a[1:])

    def test_pooled_bytes_counts_parked_buffers(self):
        ws = Workspace()
        a = ws.take((10, 10))
        assert ws.pooled_bytes == 0
        ws.give(a)
        assert ws.pooled_bytes == a.nbytes

    def test_state_round_trip(self):
        ws = Workspace()
        s = ws.take_state((2, 3, 4))
        assert s.U.shape == (2, 3, 4) and s.psa.shape == (3, 4)
        ws.give_state(s)
        t = ws.take_state((2, 3, 4))
        # the pool is LIFO per (shape, dtype): the same buffers come back,
        # though not necessarily in the same field slots
        assert {id(t.U), id(t.V), id(t.Phi)} == {id(s.U), id(s.V), id(s.Phi)}
        assert t.psa is s.psa


class TestStateRing:
    def test_scratch_skips_live_states(self):
        ws = Workspace()
        ring = StateRing(ws, (2, 3, 4), size=3)
        a = ring.scratch()
        b = ring.scratch(a)
        c = ring.scratch(a, b)
        assert len({id(a), id(b), id(c)}) == 3

    def test_exhaustion_raises(self):
        ws = Workspace()
        ring = StateRing(ws, (2, 3, 4), size=2)
        a = ring.scratch()
        b = ring.scratch(a)
        with pytest.raises(RuntimeError, match="exhausted"):
            ring.scratch(a, b)


class TestRollInto:
    @pytest.mark.parametrize("shift", [-3, -1, 0, 1, 2, 5, 7])
    @pytest.mark.parametrize("axis", [-1, -2, 0])
    def test_matches_np_roll(self, shift, axis):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 5, 7))
        out = np.empty_like(a)
        roll_into(a, shift, out, axis=axis)
        np.testing.assert_array_equal(out, np.roll(a, shift, axis=axis))


# ---------------------------------------------------------------------------
# bit-identity of full multi-step trajectories, ws vs seed path
# ---------------------------------------------------------------------------
def _initial(grid: LatLonGrid) -> ModelState:
    rng = np.random.default_rng(1234)
    return balanced_random_state(grid, rng)


def _assert_states_identical(a: ModelState, b: ModelState, label: str) -> None:
    for name in ("U", "V", "Phi", "psa"):
        xa, xb = getattr(a, name), getattr(b, name)
        assert np.array_equal(xa, xb), (
            f"{label}: field {name} differs "
            f"(max |diff| = {np.abs(xa - xb).max():.3e})"
        )


@pytest.mark.parametrize("approximate_c", [False, True])
def test_serial_bit_identical(approximate_c):
    grid = LatLonGrid(nx=24, ny=12, nz=4)
    s0 = _initial(grid)
    seed = SerialCore(grid, approximate_c=approximate_c, use_workspace=False)
    fast = SerialCore(grid, approximate_c=approximate_c, use_workspace=True)
    out_seed = seed.run(s0, 4)
    out_fast = fast.run(s0, 4)
    _assert_states_identical(
        out_seed, out_fast, f"serial(approximate_c={approximate_c})"
    )
    # same C-collective schedule on both paths
    assert fast.c_calls == seed.c_calls


def test_serial_pool_converges():
    """Steady state performs zero heap allocations on the step hot path."""
    grid = LatLonGrid(nx=24, ny=12, nz=4)
    core = SerialCore(grid, use_workspace=True)
    w = core.pad(_initial(grid))
    w = core.step(w)
    w = core.step(w)
    fresh_before = core.ws.fresh_allocations
    w = core.step(w)
    assert core.ws.fresh_allocations == fresh_before
    assert core.ws.reuses > 0


@pytest.mark.parametrize(
    "algorithm,nprocs,grid_kw",
    [
        ("original-yz", 4, dict(nx=24, ny=16, nz=4)),
        ("original-xy", 4, dict(nx=24, ny=16, nz=4)),
        ("original-3d", 4, dict(nx=24, ny=16, nz=4)),
        ("ca", 2, dict(nx=24, ny=32, nz=4)),
    ],
)
def test_distributed_bit_identical(algorithm, nprocs, grid_kw):
    grid = LatLonGrid(**grid_kw)
    s0 = _initial(grid)
    seed = DynamicalCore(
        grid, algorithm=algorithm, nprocs=nprocs, use_workspace=False
    )
    fast = DynamicalCore(
        grid, algorithm=algorithm, nprocs=nprocs, use_workspace=True
    )
    out_seed, diag_seed = seed.run(s0, 3)
    out_fast, diag_fast = fast.run(s0, 3)
    _assert_states_identical(out_seed, out_fast, algorithm)
    assert diag_fast.c_calls == diag_seed.c_calls
    assert diag_fast.exchanges == diag_seed.exchanges


def test_scan_variant_bit_identical():
    """The scan-based C collective (whose bundles contain views) composes
    with the pool and matches its seed path bitwise."""
    from repro.core.distributed import DistributedConfig, original_rank_program
    from repro.grid.decomposition import Decomposition
    from repro.simmpi import run_spmd

    grid = LatLonGrid(nx=16, ny=16, nz=8)
    s0 = _initial(grid)
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
    outs = {}
    for use_ws in (False, True):
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, nsteps=2, c_method="scan",
            use_workspace=use_ws,
        )
        result = run_spmd(decomp.nranks, original_rank_program, cfg, s0)
        blocks = [r.state for r in result.results]
        outs[use_ws] = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
    _assert_states_identical(outs[False], outs[True], "original-yz(scan)")


def test_forced_run_bit_identical():
    """Forcing hooks compose with the ring rotation (Held-Suarez path)."""
    from repro.physics.held_suarez import HeldSuarezForcing

    grid = LatLonGrid(nx=24, ny=12, nz=4)
    s0 = perturbed_rest_state(grid)
    seed = SerialCore(grid, forcing=HeldSuarezForcing(), use_workspace=False)
    fast = SerialCore(grid, forcing=HeldSuarezForcing(), use_workspace=True)
    _assert_states_identical(seed.run(s0, 3), fast.run(s0, 3), "serial+HS")
