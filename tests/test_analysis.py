"""Energy diagnostics, lower bounds and the Sec. 5.3 formulas."""

import pytest

from repro.analysis.energy import energy_budget, global_mean_psa
from repro.analysis.lower_bounds import (
    filter_dominates_summation,
    fourier_filter_lower_bound,
    section53_costs,
    summation_lower_bound,
)
from repro.physics import balanced_random_state, rest_state


class TestEnergyBudget:
    def test_zero_for_rest(self, small_grid):
        e = energy_budget(rest_state(small_grid), small_grid)
        assert e.total == 0.0

    def test_components_positive(self, small_grid, rng):
        e = energy_budget(balanced_random_state(small_grid, rng), small_grid)
        assert e.kinetic > 0
        assert e.available_potential > 0
        assert e.surface_potential > 0
        assert e.total == pytest.approx(
            e.kinetic + e.available_potential + e.surface_potential
        )

    def test_kinetic_scales_quadratically(self, small_grid, rng):
        s = balanced_random_state(small_grid, rng)
        e1 = energy_budget(s, small_grid).kinetic
        e2 = energy_budget(2.0 * s, small_grid).kinetic
        assert e2 == pytest.approx(4.0 * e1)

    def test_global_mean_psa(self, small_grid):
        s = rest_state(small_grid)
        s.psa[:] = 5.0
        assert global_mean_psa(s, small_grid) == pytest.approx(5.0)


class TestTheorem41:
    def test_zero_for_single_processor(self):
        assert fourier_filter_lower_bound(720, 1) == 0.0

    def test_positive_otherwise(self):
        assert fourier_filter_lower_bound(720, 4) > 0

    def test_rejects_bad_px(self):
        with pytest.raises(ValueError):
            fourier_filter_lower_bound(720, 0)
        with pytest.raises(ValueError):
            fourier_filter_lower_bound(720, 1024)

    def test_degenerate_full_split(self):
        assert fourier_filter_lower_bound(64, 64) > 0


class TestTheorem42:
    def test_zero_for_single_z_rank(self):
        assert summation_lower_bound(720, 360, 1) == 0.0

    def test_linear_in_pz(self):
        w2 = summation_lower_bound(720, 360, 2)
        w5 = summation_lower_bound(720, 360, 5)
        assert w5 == pytest.approx(4.0 * w2)

    def test_paper_formula(self):
        assert summation_lower_bound(10, 20, 3) == 2 * 2 * 10 * 20


class TestDominance:
    def test_filter_dominates_at_paper_scale(self):
        """Sec. 4.2's reason for killing the x-collective first."""
        assert filter_dominates_summation(720, 360, 30, 16, 8, 4)

    def test_no_dominance_without_x_split(self):
        assert not filter_dominates_summation(720, 360, 30, 1, 32, 4)


class TestSection53:
    def test_ordering_w(self):
        """W_XY >> W_YZ > W_CA with each algorithm on its own (realistic)
        decomposition, as in the paper's evaluation."""
        from repro.grid.decomposition import xy_decomposition, yz_decomposition

        dxy = xy_decomposition(720, 360, 30, 1024)
        dyz = yz_decomposition(720, 360, 30, 1024)
        w_ca = section53_costs(
            "ca", 720, 360, 30, dyz.px, dyz.py, dyz.pz
        ).W
        w_yz = section53_costs(
            "yz", 720, 360, 30, dyz.px, dyz.py, dyz.pz
        ).W
        w_xy = section53_costs(
            "xy", 720, 360, 30, dxy.px, dxy.py, dxy.pz
        ).W
        assert w_xy > w_yz > w_ca
        assert w_yz / w_ca == pytest.approx(1.5)  # 3M / 2M

    def test_ordering_s(self):
        kw = dict(nx=720, ny=360, nz=30, px=32, py=32, pz=8, m_iterations=3)
        s_ca = section53_costs("ca", **kw).S
        s_yz = section53_costs("yz", **kw).S
        s_xy = section53_costs("xy", **kw).S
        assert s_xy > s_yz > s_ca
        assert s_ca == (2 * 3 + 2)
        assert s_yz == (6 * 3 + 4)
        assert s_xy == (9 * 3 + 10)

    def test_scales_with_steps(self):
        kw = dict(nx=64, ny=32, nz=8, px=1, py=4, pz=2)
        one = section53_costs("ca", nsteps=1, **kw)
        ten = section53_costs("ca", nsteps=10, **kw)
        assert ten.W == pytest.approx(10 * one.W)
        assert ten.S == pytest.approx(10 * one.S)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            section53_costs("bogus", 64, 32, 8, 1, 4, 2)
