"""Shared fixtures: small grids, parameters and states used across tests."""
from __future__ import annotations

import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.physics import balanced_random_state, perturbed_rest_state


@pytest.fixture
def small_grid() -> LatLonGrid:
    """A pole-to-pole grid small enough for exhaustive checks."""
    return LatLonGrid(nx=32, ny=16, nz=6)


@pytest.fixture
def tiny_grid() -> LatLonGrid:
    return LatLonGrid(nx=16, ny=8, nz=4)


@pytest.fixture
def sigma6() -> SigmaLevels:
    return SigmaLevels.uniform(6)


@pytest.fixture
def fast_params() -> ModelParameters:
    """Short, consistent time steps for multi-step tests."""
    return ModelParameters(dt_adaptation=60.0, dt_advection=180.0, m_iterations=3)


@pytest.fixture
def one_iter_params() -> ModelParameters:
    """M = 1 keeps the CA halos small enough for tiny decompositions."""
    return ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20180813)  # ICPP'18 started Aug 13 2018


@pytest.fixture
def random_state(small_grid, rng):
    return balanced_random_state(small_grid, rng)


@pytest.fixture
def bump_state(small_grid):
    return perturbed_rest_state(small_grid, amplitude_k=2.0)
