"""Causal tracing, profiling and the flight recorder (``repro.obs``).

Covers the cross-process observability layer end to end:

* trace-context plumbing: span/trace id minting, traceparent headers,
  thread-local context scoping, ``absorb``-time re-parenting;
* propagation through ``run_spmd`` on both backends — every rank span
  chains up to the launch span under one trace_id;
* the serve path: a process-executor job exports one causal tree
  (supervisor job span → worker attempt span → rank spans), and a
  watchdog-killed worker leaves flight-recorder dumps naming the kill;
* Prometheus text exposition edge cases: label escaping, NaN/Inf
  values, bucket cumulativity, exemplars, quantile interpolation;
* exporter round-trips of the new span fields, chrome pid rows and
  isend/irecv flow events;
* the sampling profiler (collapsed stacks, ``ObsConfig(profile=...)``);
* the flight recorder ring, SIGTERM dump-then-die, and the report CLI
  renderings (``--top``, flight summaries);
* the bench-trajectory anomaly gate (rolling median + MAD ladder).
"""
import importlib.util
import json
import math
import os
import signal
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore
from repro.grid.latlon import LatLonGrid
from repro.obs import ObsConfig
from repro.obs.exporters import (
    chrome_trace,
    jsonl_records,
    read_jsonl,
    write_jsonl,
    write_text_atomic,
)
from repro.obs.flightrec import FlightRecorder, load_dump
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import ProfileConfig, SamplingProfiler
from repro.obs.spans import (
    SpanTracer,
    current_trace_context,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_active,
    set_trace_context,
    trace_context,
    tracing,
)
from repro.physics import perturbed_rest_state
from repro.serve import JobServer, JobSpec

WAIT = 120.0


# ---------------------------------------------------------------------------
# trace context primitives
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_span_ids_unique_and_pid_scoped(self):
        ids = {new_span_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(i >> 40 == os.getpid() for i in ids)

    def test_trace_ids_are_16_hex(self):
        tid = new_trace_id()
        assert len(tid) == 16 and int(tid, 16) >= 0
        assert tid != new_trace_id()

    def test_traceparent_round_trip(self):
        header = format_traceparent("ab" * 8, 12345)
        assert parse_traceparent(header) == ("ab" * 8, 12345)

    def test_traceparent_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_traceparent("not-a-header")

    def test_context_scoping_restores(self):
        assert current_trace_context() == ("", 0)
        prev = set_trace_context("f" * 16, 7)
        assert current_trace_context() == ("f" * 16, 7)
        set_trace_context(*prev)
        assert current_trace_context() == ("", 0)

    def test_context_manager_nests(self):
        with trace_context("a" * 16, 1):
            assert current_trace_context() == ("a" * 16, 1)
            with trace_context("b" * 16, 2):
                assert current_trace_context() == ("b" * 16, 2)
            assert current_trace_context() == ("a" * 16, 1)
        assert current_trace_context() == ("", 0)

    def test_context_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = current_trace_context()

        with trace_context("c" * 16, 3):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] == ("", 0)

    def test_spans_inherit_context_and_nest(self):
        with tracing() as tracer:
            with trace_context("d" * 16, 99):
                with tracer.span("outer", "t"):
                    with tracer.span("inner", "t"):
                        pass
        inner, outer = sorted(tracer.spans, key=lambda s: s.t_start,
                              reverse=True)[:2]
        assert outer.trace_id == inner.trace_id == "d" * 16
        assert outer.parent_id == 99
        assert inner.parent_id == outer.span_id
        assert outer.pid == inner.pid == os.getpid()

    def test_absorb_reparents_orphans(self):
        donor = SpanTracer()
        with donor.span("orphan", "t"):
            pass
        host = SpanTracer()
        host.absorb(donor.spans, trace_id="e" * 16, parent_id=424242)
        (s,) = host.spans
        assert s.trace_id == "e" * 16
        assert s.parent_id == 424242

    def test_absorb_keeps_existing_links(self):
        donor = SpanTracer()
        with trace_context("1" * 16, 5):
            with donor.span("child", "t"):
                pass
        host = SpanTracer()
        host.absorb(donor.spans, trace_id="2" * 16, parent_id=9)
        (s,) = host.spans
        assert s.trace_id == "1" * 16  # already set: not overwritten
        assert s.parent_id == 5


# ---------------------------------------------------------------------------
# propagation through run_spmd
# ---------------------------------------------------------------------------
def _rank_noop(comm, _cfg=None):
    from repro.obs.spans import active_tracer

    tr = active_tracer()
    if tr is not None:
        with tr.span("work", "test"):
            comm.barrier()
    else:
        comm.barrier()
    return comm.rank


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_spmd_ranks_share_one_causal_tree(backend):
    from repro.simmpi.launcher import run_spmd

    if backend == "process" and not hasattr(os, "fork"):
        pytest.skip("no fork")
    tracer = SpanTracer()
    prev = set_active(tracer)
    try:
        run_spmd(2, _rank_noop, backend=backend)
    finally:
        set_active(prev)
    spans = tracer.spans
    launch = [s for s in spans if s.name.startswith("spmd[")]
    assert len(launch) == 1
    work = [s for s in spans if s.name == "work"]
    assert {s.rank for s in work} == {0, 1}
    by_id = {s.span_id: s for s in spans}
    for w in work:
        assert w.trace_id == launch[0].trace_id
        cur = w
        while cur.parent_id and cur.parent_id in by_id:
            cur = by_id[cur.parent_id]
        assert cur.span_id == launch[0].span_id
    if backend == "process":
        assert len({s.pid for s in work}) == 2


# ---------------------------------------------------------------------------
# serve: one causal tree per job + post-mortem dumps
# ---------------------------------------------------------------------------
class TestServeCausal:
    def test_process_job_exports_single_tree_with_ranks(self, tmp_path):
        srv = JobServer(tmp_path / "cache", workers=1,
                        heartbeat_timeout=10.0)
        try:
            if srv.executor != "process":
                pytest.skip("process executor unavailable")
            spec = JobSpec(name="causal", nsteps=2, algorithm="ca",
                           ny=32, nprocs=2, backend="thread")
            res = srv.submit(spec).result(timeout=WAIT)
            assert res.ok
            spans = srv.tracer.spans
            jobs = [s for s in spans if s.name.startswith("job:")]
            assert len(jobs) == 1 and jobs[0].parent_id == 0
            trace = [s for s in spans if s.trace_id == jobs[0].trace_id]
            assert {s.rank for s in trace if s.rank >= 0} == {0, 1}
            assert any(s.name.startswith("attempt:") for s in trace)
            by_id = {s.span_id: s for s in trace}
            for s in trace:
                cur = s
                while cur.parent_id and cur.parent_id in by_id:
                    cur = by_id[cur.parent_id]
                assert cur.span_id == jobs[0].span_id, s.name
            assert len({s.pid for s in trace}) >= 2  # supervisor + worker
        finally:
            srv.close(drain=False, timeout=20.0)

    def test_wedge_leaves_flight_dump_naming_watchdog(self, tmp_path):
        srv = JobServer(tmp_path / "cache", workers=1,
                        heartbeat_timeout=1.5)
        try:
            if srv.executor != "process":
                pytest.skip("process executor unavailable")
            spec = JobSpec(name="wedge", nsteps=2,
                           chaos={"kind": "wedge", "attempts": [1]})
            res = srv.submit(spec).result(timeout=WAIT)
            assert res.ok and res.attempts >= 2
            dumps = sorted(srv.flight_dir.glob("*.json"))
            assert dumps, "no flight dumps written"
            docs = [load_dump(p) for p in dumps]
            reasons = [d["reason"] for d in docs]
            assert any("watchdog" in r for r in reasons), reasons
            # the supervisor-side record names job and attempt
            sup = next(d for d in docs if "watchdog" in d["reason"])
            assert sup["meta"]["kind"] == "watchdog-kill"
            assert sup["meta"]["trace_id"]
        finally:
            srv.close(drain=False, timeout=20.0)

    def test_job_latency_histogram_with_exemplar(self, tmp_path):
        srv = JobServer(tmp_path / "cache", workers=1,
                        heartbeat_timeout=10.0)
        try:
            res = srv.submit(JobSpec(name="h", nsteps=1)).result(
                timeout=WAIT)
            assert res.ok
            text = srv.metrics_text()
            assert "serve_job_latency_seconds_bucket" in text
            assert 'trace_id="' in text  # exemplar attached
        finally:
            srv.close(drain=False, timeout=20.0)


# ---------------------------------------------------------------------------
# Prometheus exposition edge cases
# ---------------------------------------------------------------------------
class TestPrometheusEdges:
    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", path='a"b\\c\nd').inc(1)
        text = reg.to_prometheus_text()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_nan_and_inf_values(self):
        reg = MetricsRegistry()
        reg.gauge("g_nan").set(float("nan"))
        reg.gauge("g_pinf", sign="p").set(float("inf"))
        reg.gauge("g_ninf", sign="n").set(float("-inf"))
        text = reg.to_prometheus_text()
        assert "g_nan NaN" in text
        assert 'g_pinf{sign="p"} +Inf' in text
        assert 'g_ninf{sign="n"} -Inf' in text

    def test_histogram_buckets_cumulative_and_exemplars(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05, trace_id="t1")
        h.observe(0.5, trace_id="t2")
        h.observe(5.0)
        h.observe(50.0, trace_id="t4")  # overflow bucket
        text = reg.to_prometheus_text()
        lines = [ln for ln in text.splitlines() if "lat_bucket" in ln]
        counts = [int(ln.split("#")[0].split()[-1]) for ln in lines]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == 4  # +Inf sees every observation
        assert 'le="+Inf"' in lines[-1]
        assert '# {trace_id="t1"} 0.05' in text
        assert '# {trace_id="t4"} 50' in text
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(55.55)
        assert 0.0 < s["p50"] <= 10.0
        assert s["p99"] >= s["p50"]

    def test_histogram_quantiles_empty_and_overflow(self):
        h = Histogram(buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))
        h.observe(100.0)
        assert h.quantile(0.5) == 2.0  # clamped to last finite edge


# ---------------------------------------------------------------------------
# exporters: new span fields, pid rows, flow events
# ---------------------------------------------------------------------------
class TestExporterRoundTrip:
    def _traced_spans(self):
        tracer = SpanTracer()
        with trace_context(new_trace_id(), 0):
            with tracer.span("parent", "t", args={"k": "v"}):
                tracer.point("isend", "comm", args={"flow": "0>1t7#0"})
                tracer.point("irecv", "comm", args={"flow": "0>1t7#0"})
        return tracer

    def test_jsonl_round_trips_ids(self, tmp_path):
        tracer = self._traced_spans()
        path = tmp_path / "ev.jsonl"
        write_jsonl(path, jsonl_records(spans=tracer.spans))
        spans = [r for r in read_jsonl(path) if r["type"] == "span"]
        parent = next(s for s in spans if s["name"] == "parent")
        assert parent["trace_id"] and parent["span_id"] > 0
        assert parent["pid"] == os.getpid()
        assert parent["args"] == {"k": "v"}
        send = next(s for s in spans if s["name"] == "isend")
        assert send["parent_id"] == parent["span_id"]
        assert send["args"]["flow"] == "0>1t7#0"

    def test_chrome_trace_flow_events_pair_up(self):
        tracer = self._traced_spans()
        doc = chrome_trace(spans=tracer.spans)
        flows = [e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert finish["bp"] == "e"

    def test_chrome_trace_pid_rows_per_process(self):
        tracer = SpanTracer()
        with tracer.span("local", "t"):
            pass
        import dataclasses

        foreign = [
            dataclasses.replace(s, pid=s.pid + 1, rank=0)
            for s in tracer.spans
        ]
        doc = chrome_trace(spans=tracer.spans + foreign)
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert len(pids) == 2
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert any("wall-clock pid" in n for n in names)

    def test_write_text_atomic_no_tmp_left(self, tmp_path):
        target = tmp_path / "deep" / "out.txt"
        got = write_text_atomic(target, "hello")
        assert got == target and target.read_text() == "hello"
        assert list(target.parent.glob("*tmp*")) == []


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------
class TestProfiler:
    def test_collects_samples_and_writes(self, tmp_path):
        out = tmp_path / "p.collapsed"
        with SamplingProfiler(hz=200.0, out=out) as prof:
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.15:
                sum(range(500))
        assert prof.nsamples > 0
        path = prof.write()
        text = path.read_text()
        assert text
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack.startswith(("main;", "rank "))

    def test_config_coercion(self):
        assert ProfileConfig.coerce(None) is None
        assert ProfileConfig.coerce(False) is None
        assert ProfileConfig.coerce(True).hz == ProfileConfig().hz
        assert ProfileConfig.coerce(50).hz == 50.0
        assert ProfileConfig.coerce("x.collapsed").out == "x.collapsed"
        cfg = ProfileConfig(hz=10)
        assert ProfileConfig.coerce(cfg) is cfg
        with pytest.raises(TypeError):
            ProfileConfig.coerce(object())
        with pytest.raises(ValueError):
            ProfileConfig(hz=0)

    def test_obs_config_profile_writes_flamegraph(self, tmp_path):
        out = tmp_path / "run.collapsed"
        grid = LatLonGrid(nx=16, ny=8, nz=4)
        core = DynamicalCore(
            grid, algorithm="serial",
            params=ModelParameters(m_iterations=1),
            observe=ObsConfig(profile=str(out)),
        )
        core.run(perturbed_rest_state(grid), nsteps=2)
        assert core.observation.profiler is not None
        assert not core.observation.profiler.running  # stopped with scope
        assert out.exists()

    def test_step_wall_histogram_recorded(self):
        grid = LatLonGrid(nx=16, ny=8, nz=4)
        core = DynamicalCore(
            grid, algorithm="serial",
            params=ModelParameters(m_iterations=1),
            observe=True,
        )
        core.run(perturbed_rest_state(grid), nsteps=3)
        text = core.observation.prometheus_text()
        assert "step_wall_seconds_count 3" in text


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json", capacity=4)
        for i in range(10):
            rec.note("tick", i=i)
        assert len(rec.events) == 4
        assert [e["i"] for e in rec.events] == [6, 7, 8, 9]

    def test_dump_round_trip(self, tmp_path):
        rec = FlightRecorder(tmp_path / "f.json", meta={"worker": 3})
        rec.note("hello", x=1)
        path = rec.dump("test reason")
        doc = load_dump(path)
        assert doc["reason"] == "test reason"
        assert doc["meta"] == {"worker": 3}
        assert doc["pid"] == os.getpid()
        assert doc["events"][-1]["kind"] == "hello"

    def test_load_dump_rejects_non_flight(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"not": "a dump"}')
        with pytest.raises(ValueError):
            load_dump(p)

    def test_log_handler_mirrors_warnings(self, tmp_path):
        import logging

        rec = FlightRecorder(tmp_path / "f.json")
        handler = rec.attach_log_handler()
        try:
            logging.getLogger("flight.test").warning("trouble %d", 7)
        finally:
            logging.getLogger().removeHandler(handler)
        kinds = [e["kind"] for e in rec.events]
        assert "log" in kinds
        assert any("trouble 7" in str(e) for e in rec.events)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
    def test_sigterm_dumps_then_dies(self, tmp_path):
        out = tmp_path / "term.json"
        pid = os.fork()
        if pid == 0:  # child
            try:
                from repro.obs import flightrec

                flightrec.install(out, meta={"role": "victim"})
                flightrec.note("working", step=1)
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(10)
            finally:
                os._exit(99)  # only reached if the handler didn't re-raise
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGTERM
        doc = load_dump(out)
        assert doc["reason"] == "signal SIGTERM"
        assert doc["events"][-1]["kind"] == "working"


# ---------------------------------------------------------------------------
# report CLI
# ---------------------------------------------------------------------------
class TestReportCli:
    def test_top_table_lists_slowest(self, tmp_path, capsys):
        from repro.obs.exporters import write_chrome_trace
        from repro.obs.report import main

        tracer = SpanTracer()
        with tracer.span("slowest", "t"):
            time.sleep(0.02)
        with tracer.span("fast", "t"):
            pass
        path = tmp_path / "t.json"
        write_chrome_trace(path, chrome_trace(spans=tracer.spans))
        assert main([str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "top 1 slowest spans" in out
        assert "slowest" in out

    def test_flight_dump_auto_detected(self, tmp_path, capsys):
        from repro.obs.report import main

        rec = FlightRecorder(tmp_path / "f.json", meta={"worker": 1})
        rec.note("last-breath", job=9)
        rec.dump("watchdog kill: no heartbeat")
        assert main([str(tmp_path / "f.json")]) == 0
        out = capsys.readouterr().out
        assert "watchdog kill" in out
        assert "last-breath" in out


# ---------------------------------------------------------------------------
# bench-trajectory anomaly gate
# ---------------------------------------------------------------------------
def _load_trajectory_module():
    path = Path(__file__).resolve().parent.parent / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "bench_trajectory", path / "trajectory.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestTrajectoryGate:
    def _entries(self, rates, key="serial@1"):
        return [{"cases": {key: {"steps_per_sec": r}}} for r in rates]

    def test_steady_history_no_anomaly(self):
        tj = _load_trajectory_module()
        hist = self._entries([10.0, 10.1, 9.9, 10.0, 10.05])
        fresh = {"cases": {"serial@1": {"steps_per_sec": 9.95}}}
        assert tj.detect_anomalies(hist, fresh) == {}

    def test_moderate_slowdown_warns(self):
        tj = _load_trajectory_module()
        # median 10.0, MAD 0.1 -> scale ~0.148; 9.2 lands between the
        # warn (3.5) and fail (7.0) rungs
        hist = self._entries([10.0, 10.2, 9.8, 10.0, 10.1])
        fresh = {"cases": {"serial@1": {"steps_per_sec": 9.2}}}
        res = tj.detect_anomalies(hist, fresh)
        assert res["serial@1"]["severity"] == "warn"
        assert res["serial@1"]["z"] < -tj.WARN_Z

    def test_extreme_slowdown_fails_immediately(self):
        tj = _load_trajectory_module()
        hist = self._entries([10.0, 10.2, 9.8, 10.0, 10.1])
        fresh = {"cases": {"serial@1": {"steps_per_sec": 2.0}}}
        res = tj.detect_anomalies(hist, fresh)
        assert res["serial@1"]["severity"] == "fail"

    def test_repeated_warn_escalates_to_fail(self):
        tj = _load_trajectory_module()
        hist = self._entries([10.0, 10.2, 9.8, 10.0, 10.1])
        fresh1 = {"cases": {"serial@1": {"steps_per_sec": 9.2}}}
        first = tj.detect_anomalies(hist, fresh1)
        assert first["serial@1"]["severity"] == "warn"
        fresh1["anomalies"] = first
        hist.append(fresh1)
        fresh2 = {"cases": {"serial@1": {"steps_per_sec": 9.2}}}
        second = tj.detect_anomalies(hist, fresh2)
        assert second["serial@1"]["severity"] == "fail"

    def test_speedups_never_flag(self):
        tj = _load_trajectory_module()
        hist = self._entries([10.0, 10.1, 9.9, 10.0, 10.05])
        fresh = {"cases": {"serial@1": {"steps_per_sec": 100.0}}}
        assert tj.detect_anomalies(hist, fresh) == {}

    def test_short_history_is_inert(self):
        tj = _load_trajectory_module()
        hist = self._entries([10.0, 10.0])
        fresh = {"cases": {"serial@1": {"steps_per_sec": 1.0}}}
        assert tj.detect_anomalies(hist, fresh) == {}

    def test_flat_history_uses_floor_scale(self):
        tj = _load_trajectory_module()
        assert tj.robust_z(9.0, [10.0] * 5) < -tj.WARN_Z
        assert tj.robust_z(10.0, [10.0] * 5) == 0.0

    def test_main_seeds_from_baseline_and_gates(self, tmp_path):
        tj = _load_trajectory_module()
        baseline = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "baseline" / "BENCH_baseline.json"
        )
        report = json.loads(baseline.read_text())
        rp = tmp_path / "BENCH_fresh.json"
        rp.write_text(json.dumps(report))
        out = tmp_path / "BENCH_trajectory.json"
        rc = tj.main([
            "--report", str(rp), "--baseline", str(baseline),
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert [e["source"] for e in doc["entries"]] == ["baseline", "ci"]
        # build enough identical history for the gate to arm, then tank
        # one case: the ladder must warn (rc 0) then fail (rc 1)
        for _ in range(4):
            rc = tj.main([
                "--report", str(rp), "--history", str(out),
                "--out", str(out),
            ])
            assert rc == 0
        # identical repeats -> MAD 0 -> 1%-of-median floor scale; a 5%
        # drop sits between the warn (3.5) and fail (7.0) rungs
        slow = json.loads(rp.read_text())
        for case in slow["cases"]:
            if "steps_per_sec" in case:
                case["steps_per_sec"] *= 0.95
        sp = tmp_path / "BENCH_slow.json"
        sp.write_text(json.dumps(slow))
        rc1 = tj.main([
            "--report", str(sp), "--history", str(out), "--out", str(out),
        ])
        assert rc1 == 0  # first moderate slowdown: warn only
        doc = json.loads(out.read_text())
        assert doc["entries"][-1].get("anomalies")
        rc2 = tj.main([
            "--report", str(sp), "--history", str(out), "--out", str(out),
        ])
        assert rc2 == 1  # repeated: the ladder fails
        rc3 = tj.main([
            "--report", str(sp), "--history", str(out), "--out", str(out),
            "--no-gate",
        ])
        assert rc3 == 0


def test_numpy_is_available_marker():
    """Guard: this suite assumes the baked-in numeric stack."""
    assert np.zeros(1).size == 1 and sys.version_info >= (3, 11)
