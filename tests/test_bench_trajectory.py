"""Robustness of the CI bench-trajectory maintainer.

The trajectory artifact survives CI runs, runner migrations, and tooling
upgrades — so a corrupt, truncated, or schema-mismatched history file is
an expected input, not an error: the script must warn and reseed from
the committed baseline instead of crashing the bench job.
"""
import importlib.util
import json
from pathlib import Path

import pytest

from repro.perf.wallclock import SCHEMA_VERSION

_spec = importlib.util.spec_from_file_location(
    "bench_trajectory",
    Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py",
)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def make_report(steps_per_sec=10.0) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": True,
        "machine": {"git_sha": "abc1234", "hostname": "ci", "cpu_count": 4},
        "cases": [
            {
                "kind": "serial_step",
                "mesh": "small",
                "steps_per_sec": steps_per_sec,
            }
        ],
    }


@pytest.fixture()
def report(tmp_path):
    p = tmp_path / "BENCH_fresh.json"
    p.write_text(json.dumps(make_report()))
    return p


@pytest.fixture()
def baseline(tmp_path):
    p = tmp_path / "BENCH_baseline.json"
    p.write_text(json.dumps(make_report(steps_per_sec=9.0)))
    return p


def run_main(report, history, baseline, out):
    return trajectory.main(
        [
            "--report", str(report),
            "--history", str(history),
            "--baseline", str(baseline),
            "--out", str(out),
        ]
    )


class TestValidHistory:
    def test_appends_to_good_history(self, tmp_path, report, baseline):
        history = tmp_path / "hist.json"
        history.write_text(json.dumps({
            "trajectory_schema": trajectory.TRAJECTORY_SCHEMA,
            "entries": [
                {"source": "ci", "cases": {"k": {"steps_per_sec": 1.0}}}
            ],
        }))
        out = tmp_path / "out.json"
        assert run_main(report, history, baseline, out) == 0
        got = json.loads(out.read_text())
        assert len(got["entries"]) == 2
        assert got["entries"][0]["source"] == "ci"  # prior entry kept

    def test_missing_history_seeds_from_baseline(
        self, tmp_path, report, baseline
    ):
        out = tmp_path / "out.json"
        assert run_main(report, tmp_path / "nope.json", baseline, out) == 0
        got = json.loads(out.read_text())
        assert [e["source"] for e in got["entries"]] == ["baseline", "ci"]


class TestCorruptHistory:
    @pytest.mark.parametrize(
        "payload",
        [
            "{ not json at all",
            '{"trajectory_schema": 999, "entries": []}',
            '{"trajectory_schema": 1, "entries": "oops"}',
            '{"trajectory_schema": 1}',
            '{"trajectory_schema": 1, "entries": [{"cases": 3}]}',
            '{"trajectory_schema": 1, "entries": [{"cases": '
            '{"k": {"wrong": 1}}}]}',
            "[1, 2, 3]",
        ],
        ids=[
            "truncated-json", "schema-bump", "entries-not-list",
            "entries-missing", "cases-not-dict", "record-missing-rate",
            "not-an-object",
        ],
    )
    def test_reseeds_and_warns_instead_of_crashing(
        self, tmp_path, report, baseline, payload, capsys
    ):
        history = tmp_path / "hist.json"
        history.write_text(payload)
        out = tmp_path / "out.json"
        assert run_main(report, history, baseline, out) == 0
        assert "reseeding from the committed baseline" in capsys.readouterr().err
        got = json.loads(out.read_text())
        assert got["trajectory_schema"] == trajectory.TRAJECTORY_SCHEMA
        assert [e["source"] for e in got["entries"]] == ["baseline", "ci"]

    def test_corrupt_history_without_baseline_starts_fresh(
        self, tmp_path, report, capsys
    ):
        history = tmp_path / "hist.json"
        history.write_text("garbage")
        out = tmp_path / "out.json"
        code = trajectory.main(
            ["--report", str(report), "--history", str(history),
             "--out", str(out)]
        )
        assert code == 0
        got = json.loads(out.read_text())
        assert [e["source"] for e in got["entries"]] == ["ci"]


class TestValidator:
    def test_accepts_round_trip_of_own_output(self, tmp_path, report, baseline):
        out = tmp_path / "out.json"
        run_main(report, tmp_path / "none.json", baseline, out)
        assert trajectory.valid_history(json.loads(out.read_text()))

    def test_rejects_non_dict(self):
        assert not trajectory.valid_history([])
        assert not trajectory.valid_history(None)
        assert not trajectory.valid_history("x")
