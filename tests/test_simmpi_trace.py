"""Event tracing and the extra collectives of the simulated cluster."""
import numpy as np
import pytest

from repro.simmpi import MachineModel, run_spmd
from repro.simmpi.trace import busy_fraction, merge_timeline, render_gantt


class TestTracing:
    def test_trace_off_by_default(self):
        res = run_spmd(2, lambda comm: comm.compute(0.1))
        assert res.traces is None

    def test_compute_events_recorded(self):
        def prog(comm):
            comm.compute(0.5, phase="stencil")
            comm.compute(0.25)

        res = run_spmd(2, prog, trace=True)
        events = res.traces[0].events
        assert len(events) == 2
        assert events[0].kind == "compute"
        assert events[0].duration == pytest.approx(0.5)
        assert events[0].phase == "stencil"
        assert events[1].t_start == pytest.approx(0.5)

    def test_wait_events_recorded(self):
        machine = MachineModel(alpha=0.0, beta=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send(1, np.zeros(4))
            else:
                comm.recv(0)

        res = run_spmd(2, prog, machine=machine, trace=True)
        waits = [e for e in res.traces[1].events if e.kind == "recv_wait"]
        assert len(waits) == 1
        assert waits[0].duration == pytest.approx(1.0)

    def test_collective_events_recorded(self):
        def prog(comm):
            comm.compute(0.1 * comm.rank)
            comm.allreduce(np.zeros(8))

        res = run_spmd(3, prog, trace=True)
        colls = [e for e in res.traces[0].events if e.kind == "collective"]
        assert len(colls) == 1
        assert "allreduce" in colls[0].detail

    def test_merge_timeline_ordered(self):
        def prog(comm):
            comm.compute(0.1 * (comm.rank + 1))
            comm.barrier()

        res = run_spmd(3, prog, trace=True)
        events = merge_timeline(res.traces)
        starts = [e.t_start for e in events]
        assert starts == sorted(starts)

    def test_busy_fraction(self):
        machine = MachineModel(alpha=0.0, beta=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send(1, np.zeros(4))
            else:
                comm.recv(0)

        res = run_spmd(2, prog, machine=machine, trace=True)
        assert busy_fraction(res.traces[0], "compute") == pytest.approx(1.0)
        assert busy_fraction(res.traces[1], "recv_wait") == pytest.approx(1.0)

    def test_gantt_renders(self):
        def prog(comm):
            comm.compute(0.2 if comm.rank else 0.6)
            comm.barrier()

        res = run_spmd(2, prog, trace=True)
        text = render_gantt(res.traces, width=40)
        assert "rank   0" in text
        assert "#" in text and "=" in text

    def test_gantt_empty(self):
        res = run_spmd(2, lambda comm: None, trace=True)
        assert render_gantt(res.traces) == "(empty trace)"


class TestTraceEdgeCases:
    def test_busy_fraction_empty_recorder(self):
        from repro.simmpi.trace import TraceRecorder

        assert busy_fraction(TraceRecorder(0)) == 0.0
        assert busy_fraction(TraceRecorder(0), "recv_wait") == 0.0

    def test_busy_fraction_zero_duration_events(self):
        from repro.simmpi.trace import TraceRecorder

        rec = TraceRecorder(0)
        rec.record("compute", 0.0, 0.0)
        rec.record("collective", 0.0, 0.0)
        assert busy_fraction(rec, "compute") == 0.0

    def test_gantt_zero_duration_events_only(self):
        from repro.simmpi.trace import TraceRecorder

        rec = TraceRecorder(0)
        rec.record("compute", 0.0, 0.0)
        assert render_gantt([rec]) == "(empty trace)"

    def test_gantt_zero_duration_span_amid_real_work(self):
        from repro.simmpi.trace import TraceRecorder

        rec = TraceRecorder(0)
        rec.record("compute", 0.0, 1.0)
        rec.record("collective", 0.5, 0.5)  # zero-duration, mid-timeline
        text = render_gantt([rec], width=10)
        assert "rank   0" in text and "#" in text

    def test_merge_timeline_empty(self):
        from repro.simmpi.trace import TraceRecorder

        assert merge_timeline([TraceRecorder(0), TraceRecorder(1)]) == []

    def test_chrome_trace_round_trip(self, tmp_path):
        from repro.obs.exporters import (
            duration_events,
            load_chrome_trace,
            logical_events,
            write_chrome_trace,
        )

        def prog(comm):
            comm.compute(0.5, phase="stencil")
            comm.allreduce(np.zeros(4))

        res = run_spmd(2, prog, trace=True)
        events = logical_events(res.traces)
        path = write_chrome_trace(tmp_path / "t.json", events)
        doc = load_chrome_trace(path)
        xs = duration_events(doc)
        originals = [e for rec in res.traces for e in rec.events]
        assert len(xs) == len(originals)
        assert {e["name"] for e in xs} == {e.kind for e in originals}
        # logical seconds → trace microseconds, per-rank lanes preserved
        comp = next(e for e in xs if e["name"] == "compute")
        assert comp["dur"] == pytest.approx(0.5e6)
        assert {e["tid"] for e in xs} == {0, 1}

    def test_chrome_trace_rejects_non_trace(self, tmp_path):
        from repro.obs.exporters import load_chrome_trace

        p = tmp_path / "nope.json"
        p.write_text('{"foo": 1}')
        with pytest.raises(ValueError):
            load_chrome_trace(p)


class TestGatherScatter:
    def test_gather_to_root(self):
        def prog(comm):
            out = comm.world_comm().gather(
                np.array([float(comm.rank)]), root=1
            )
            return None if out is None else [float(a[0]) for a in out]

        res = run_spmd(3, prog)
        assert res.results == [None, [0.0, 1.0, 2.0], None]

    def test_scatter_from_root(self):
        def prog(comm):
            payloads = None
            if comm.rank == 0:
                payloads = [np.full(2, float(i) * 10) for i in range(comm.size)]
            got = comm.world_comm().scatter(payloads, root=0)
            return float(got[0])

        res = run_spmd(4, prog)
        assert res.results == [0.0, 10.0, 20.0, 30.0]

    def test_scatter_validates_count(self):
        def prog(comm):
            payloads = [np.zeros(2)] if comm.rank == 0 else None
            comm.world_comm().scatter(payloads, root=0)

        with pytest.raises(Exception):
            run_spmd(2, prog, timeout=2.0)


class TestAllreduceAlgorithms:
    def test_recursive_doubling_cheaper_for_small_messages(self):
        ring = MachineModel(alpha=1e-3, beta=1e-9, gamma=0.0)
        rd = MachineModel(
            alpha=1e-3, beta=1e-9, gamma=0.0,
            allreduce_algorithm="recursive_doubling",
        )
        q, small = 16, 64
        assert rd.allreduce_time(q, small) < ring.allreduce_time(q, small)

    def test_ring_cheaper_for_large_messages(self):
        ring = MachineModel(alpha=1e-6, beta=1e-9, gamma=0.0)
        rd = MachineModel(
            alpha=1e-6, beta=1e-9, gamma=0.0,
            allreduce_algorithm="recursive_doubling",
        )
        q, big = 16, 10_000_000
        assert ring.allreduce_time(q, big) < rd.allreduce_time(q, big)

    def test_crossover_separates_regimes(self):
        m = MachineModel(alpha=1e-5, beta=1e-9, gamma=5e-10)
        q = 8
        x = m.allreduce_crossover_bytes(q)
        ring = MachineModel(alpha=1e-5, beta=1e-9, gamma=5e-10)
        rd = MachineModel(
            alpha=1e-5, beta=1e-9, gamma=5e-10,
            allreduce_algorithm="recursive_doubling",
        )
        assert rd.allreduce_time(q, int(x * 0.5)) < ring.allreduce_time(
            q, int(x * 0.5)
        )
        assert ring.allreduce_time(q, int(x * 2)) < rd.allreduce_time(
            q, int(x * 2)
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(allreduce_algorithm="telepathy")

    def test_results_identical_across_algorithms(self):
        """The algorithm choice changes cost only, never the result."""
        def prog(comm):
            return comm.allreduce(np.full(5, float(comm.rank + 1)))

        ring = run_spmd(4, prog)
        rd = run_spmd(
            4, prog,
            machine=MachineModel(allreduce_algorithm="recursive_doubling"),
        )
        assert np.array_equal(ring.results[0], rd.results[0])
