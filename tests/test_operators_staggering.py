"""C-grid staggering and finite-difference primitives."""
import numpy as np
import pytest

from repro.operators.staggering import (
    ddx_c2c,
    ddx_c2u,
    ddx_u2c,
    ddy_c2c,
    ddy_c2v,
    ddy_v2c,
    from_u,
    from_v,
    to_u,
    to_v,
    u_to_v,
    v_to_u,
)


@pytest.fixture
def linear_x():
    """A field linear in the x index (avoiding the periodic seam)."""
    nz, ny, nx = 2, 4, 16
    i = np.arange(nx, dtype=float)
    return np.broadcast_to(i, (nz, ny, nx)).copy()


@pytest.fixture
def linear_y():
    nz, ny, nx = 2, 8, 4
    j = np.arange(ny, dtype=float)[None, :, None]
    return np.broadcast_to(j, (nz, ny, nx)).copy()


class TestAverages:
    def test_to_u_midpoint(self, linear_x):
        # U-point i-1/2 between centres i-1 and i -> value i - 1/2
        out = to_u(linear_x)
        assert np.allclose(out[..., 2:-2][..., 0], 1.5)

    def test_from_u_inverse_on_linear(self, linear_x):
        out = from_u(to_u(linear_x))
        assert np.allclose(out[..., 2:-2], linear_x[..., 2:-2])

    def test_to_v_from_v_on_linear(self, linear_y):
        assert np.allclose(to_v(linear_y)[:, 2:-2, :], linear_y[:, 2:-2, :] + 0.5)
        assert np.allclose(from_v(linear_y)[:, 2:-2, :], linear_y[:, 2:-2, :] - 0.5)

    def test_four_point_averages_constant(self):
        a = np.full((2, 5, 6), 3.0)
        assert np.allclose(v_to_u(a)[:, 1:-1, :], 3.0)
        assert np.allclose(u_to_v(a)[:, 1:-1, :], 3.0)

    def test_v_to_u_offsets(self, rng):
        a = rng.standard_normal((1, 6, 8))
        out = v_to_u(a)
        j, i = 3, 4
        expected = 0.25 * (
            a[0, j - 1, i - 1] + a[0, j - 1, i] + a[0, j, i - 1] + a[0, j, i]
        )
        assert out[0, j, i] == pytest.approx(expected)

    def test_u_to_v_offsets(self, rng):
        a = rng.standard_normal((1, 6, 8))
        out = u_to_v(a)
        j, i = 3, 4
        expected = 0.25 * (
            a[0, j, i] + a[0, j, i + 1] + a[0, j + 1, i] + a[0, j + 1, i + 1]
        )
        assert out[0, j, i] == pytest.approx(expected)


class TestDerivatives:
    def test_exact_on_linear_x(self, linear_x):
        d = 0.5
        for deriv in (ddx_c2u, ddx_u2c, ddx_c2c):
            out = deriv(linear_x, d)
            assert np.allclose(out[..., 3:-3], 2.0), deriv.__name__

    def test_exact_on_linear_y(self, linear_y):
        d = 0.25
        for deriv in (ddy_c2v, ddy_v2c, ddy_c2c):
            out = deriv(linear_y, d)
            assert np.allclose(out[:, 3:-3, :], 4.0), deriv.__name__

    def test_constant_has_zero_derivative(self):
        a = np.full((2, 4, 8), 7.0)
        assert np.allclose(ddx_c2c(a, 0.1), 0.0)
        assert np.allclose(ddy_c2c(a, 0.1)[:, 1:-1], 0.0)

    def test_second_order_accuracy_x(self):
        """Centred differences converge at O(h^2) on a smooth function."""
        errs = []
        for nx in (16, 32, 64):
            x = 2 * np.pi * np.arange(nx) / nx
            f = np.sin(x)[None, None, :] * np.ones((1, 2, nx))
            d = ddx_c2c(f, 2 * np.pi / nx)
            errs.append(np.max(np.abs(d[0, 0] - np.cos(x))))
        assert errs[1] / errs[0] < 0.3
        assert errs[2] / errs[1] < 0.3

    def test_staggered_pair_telescopes(self, rng):
        """ddx_u2c(to_u(f) * g_u) sums telescopically around the circle."""
        f = rng.standard_normal((1, 3, 12))
        flux = to_u(f)
        div = ddx_u2c(flux, 1.0)
        assert np.allclose(div.sum(axis=-1), 0.0, atol=1e-12)
