"""Standard stratification profiles."""
import numpy as np
import pytest

from repro import constants
from repro.state.standard_atmosphere import StandardAtmosphere


@pytest.fixture
def atm() -> StandardAtmosphere:
    return StandardAtmosphere()


class TestTemperature:
    def test_surface_value(self, atm):
        assert atm.temperature(atm.p_surface) == pytest.approx(atm.t_surface)

    def test_monotone_in_pressure(self, atm):
        p = np.linspace(5e3, 1e5, 50)
        t = atm.temperature(p)
        assert np.all(np.diff(t) >= 0)

    def test_tropopause_floor(self, atm):
        assert atm.temperature(100.0) == pytest.approx(atm.t_tropopause)

    def test_at_sigma_shapes(self, atm):
        sig = np.array([0.1, 0.5, 0.9])
        t = atm.temperature_at_sigma(sig)
        assert t.shape == (3, 1, 1)
        ps = np.full((4, 5), 1.0e5)
        t2 = atm.temperature_at_sigma(sig, ps=ps)
        assert t2.shape == (3, 4, 5)

    def test_local_ps_shifts_reference(self, atm):
        sig = np.array([0.5])
        t_lo = atm.temperature_at_sigma(sig, ps=9.0e4)
        t_hi = atm.temperature_at_sigma(sig, ps=1.05e5)
        # at the same sigma, higher surface pressure means higher pressure
        # and therefore a warmer standard temperature
        assert t_hi.ravel()[0] > t_lo.ravel()[0]


class TestGeopotential:
    def test_zero_at_reference_surface(self, atm):
        assert atm.geopotential(atm.p_surface) == pytest.approx(0.0)

    def test_monotone_decreasing_in_pressure(self, atm):
        p = np.linspace(1e3, 1e5, 100)
        phi = atm.geopotential(p)
        assert np.all(np.diff(phi) < 0)

    def test_hydrostatic_consistency(self, atm):
        """d(phi)/d(ln p) = -R T must hold through both branches."""
        for p0 in (9.0e4, 5.0e4, atm.tropopause_pressure() * 1.01, 1.0e4):
            dlnp = 1e-5
            p_hi = p0 * np.exp(dlnp)
            dphi = atm.geopotential(p_hi) - atm.geopotential(p0)
            t_mid = atm.temperature(np.sqrt(p0 * p_hi))
            assert dphi / dlnp == pytest.approx(
                -constants.R_DRY * float(t_mid), rel=1e-3
            )

    def test_continuous_at_tropopause(self, atm):
        """No jump: crossing the branch point changes phi only by the
        hydrostatic increment -R T dp / p."""
        pt = atm.tropopause_pressure()
        eps = 1e-4
        below = float(atm.geopotential(pt * (1 + eps)))
        above = float(atm.geopotential(pt * (1 - eps)))
        hydrostatic = 2 * eps * constants.R_DRY * atm.t_tropopause
        assert above - below == pytest.approx(hydrostatic, rel=1e-2)


class TestSurfaceDensity:
    def test_rho_sa_reasonable(self, atm):
        assert 1.1 < atm.rho_sa < 1.3  # kg/m^3 at ~288 K, 1000 hPa
