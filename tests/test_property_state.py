"""Property-based tests: the ModelState linear space and packing."""
import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.state.variables import ModelState

shapes = st.tuples(
    st.integers(1, 4), st.integers(2, 6), st.integers(2, 8)
)


def states(shape):
    """Strategy for a ModelState of fixed shape with finite float64s."""
    nz, ny, nx = shape
    finite = st.floats(-1e6, 1e6, allow_nan=False, width=64)
    arr3 = hnp.arrays(np.float64, (nz, ny, nx), elements=finite)
    arr2 = hnp.arrays(np.float64, (ny, nx), elements=finite)
    return st.builds(ModelState, U=arr3, V=arr3, Phi=arr3, psa=arr2)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, data=st.data())
def test_pack_unpack_roundtrip(shape, data):
    s = data.draw(states(shape))
    assert ModelState.unpack(s.pack(), shape).allclose(s, rtol=0, atol=0)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, data=st.data(), alpha=st.floats(-10, 10, allow_nan=False))
def test_axpy_linear(shape, data, alpha):
    a = data.draw(states(shape))
    b = data.draw(states(shape))
    out = a.axpy(alpha, b)
    assert np.allclose(out.U, a.U + alpha * b.U, rtol=1e-12, atol=1e-9)
    assert np.allclose(out.psa, a.psa + alpha * b.psa, rtol=1e-12, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, data=st.data())
def test_midpoint_between(shape, data):
    a = data.draw(states(shape))
    b = data.draw(states(shape))
    m = ModelState.midpoint(a, b)
    lo = np.minimum(a.U, b.U) - 1e-9
    hi = np.maximum(a.U, b.U) + 1e-9
    assert np.all(m.U >= lo) and np.all(m.U <= hi)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, data=st.data())
def test_max_difference_symmetric_and_zero_on_self(shape, data):
    a = data.draw(states(shape))
    b = data.draw(states(shape))
    assert a.max_difference(a) == 0.0
    assert a.max_difference(b) == b.max_difference(a)
