"""Strong-scaling analysis and the JSON experiment report."""
import json

import pytest

from repro.analysis.scaling import (
    ca_advantage_persists,
    scaling_report,
    strong_scaling,
)
from repro.grid.latlon import paper_grid
from repro.perf.model import PAPER_PROC_SWEEP, PerformanceModel
from repro.perf.report import full_report, headline_claims


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(paper_grid())


class TestStrongScaling:
    def test_baseline_point(self, model):
        pts = strong_scaling(model, "ca", [128, 512])
        assert pts[0].nprocs == 128
        assert pts[0].speedup == pytest.approx(1.0)
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_speedup_below_ideal(self, model):
        pts = strong_scaling(model, "original-yz", PAPER_PROC_SWEEP)
        for pt in pts[1:]:
            ideal = pt.nprocs / pts[0].nprocs
            assert pt.speedup < ideal  # communication-bound code
            assert pt.efficiency < 1.0

    def test_ca_scales_better_than_yz(self, model):
        ca = strong_scaling(model, "ca", PAPER_PROC_SWEEP)
        yz = strong_scaling(model, "original-yz", PAPER_PROC_SWEEP)
        # absolute time advantage at the largest size
        assert ca[-1].total_time < yz[-1].total_time

    def test_empty_procs_rejected(self, model):
        with pytest.raises(ValueError):
            strong_scaling(model, "ca", [])

    def test_advantage_persists(self, model):
        """The Sec. 5.3 scalability assertion over the paper's sweep."""
        assert ca_advantage_persists(model, [128, 256, 512, 1024])

    def test_yz_limit_is_1024(self, model):
        """Sec. 5.1: 'the number of processes used under Y-Z decomposition
        is 1024 at most' — 2048 = 2^11 has no feasible (p_y <= n_y/2,
        p_z <= n_z/2) factorization on the 360 x 30 plane."""
        with pytest.raises(ValueError):
            model.decomposition("ca", 2048)

    def test_report_renders(self, model):
        text = scaling_report(model, ["ca"], [128, 256])
        assert "speedup" in text and "ca" in text


class TestReport:
    def test_full_report_structure(self, model):
        rep = full_report(model)
        assert set(rep) == {
            "meta", "figures", "headline_claims", "sec53", "strong_scaling"
        }
        assert rep["meta"]["mesh"] == [720, 360, 30]
        assert rep["figures"]["procs"] == PAPER_PROC_SWEEP

    def test_report_json_serializable(self, model):
        text = json.dumps(full_report(model))
        assert "headline_claims" in text

    def test_headline_claims_close_to_paper(self, model):
        claims = headline_claims(model)
        for name, pair in claims.items():
            paper, ours = pair["paper"], pair["reproduced"]
            rel = abs(ours - paper) / abs(paper)
            # every anchor within 60% (most within 15%; the CA stencil
            # time carries the documented bundle-volume deviation)
            assert rel < 0.6, f"{name}: paper {paper}, reproduced {ours}"

    def test_tight_anchors(self, model):
        claims = headline_claims(model)
        for name in ("saved_vs_xy_1024_s", "saved_vs_yz_1024_s",
                     "reduction_vs_xy_512", "collective_speedup_avg"):
            pair = claims[name]
            rel = abs(pair["reproduced"] - pair["paper"]) / abs(pair["paper"])
            assert rel < 0.15, name
