"""Direct unit tests of the machine-model cost formulas."""

import pytest

from repro.simmpi.machine import LAPTOP_LIKE, MachineModel, TIANHE2_LIKE


@pytest.fixture
def m():
    return MachineModel(alpha=1e-5, beta=2e-9, gamma=1e-9)


class TestPointToPoint:
    def test_alpha_beta(self, m):
        assert m.p2p_time(0) == pytest.approx(1e-5)
        assert m.p2p_time(10**6) == pytest.approx(1e-5 + 2e-3)


class TestCollectiveFormulas:
    def test_single_rank_free(self, m):
        for f in (
            m.allreduce_time, m.reduce_time, m.bcast_time,
            m.allgather_time, m.alltoall_time, m.scan_time,
        ):
            assert f(1, 1000) == 0.0
        assert m.barrier_time(1) == 0.0

    def test_ring_allreduce_formula(self, m):
        q, n = 8, 8000
        expected = 2 * 7 * 1e-5 + 2 * 7 / 8 * n * 2e-9 + 7 / 8 * n * 1e-9
        assert m.allreduce_time(q, n) == pytest.approx(expected)

    def test_tree_costs_log_scaling(self, m):
        # doubling q within a power-of-two adds exactly one alpha round
        t8 = m.bcast_time(8, 0)
        t16 = m.bcast_time(16, 0)
        assert t16 - t8 == pytest.approx(1e-5)

    def test_allgather_linear_in_q(self, m):
        assert m.allgather_time(9, 100) == pytest.approx(
            8 * (1e-5 + 100 * 2e-9)
        )

    def test_barrier_dissemination(self, m):
        assert m.barrier_time(8) == pytest.approx(3 * 1e-5)
        assert m.barrier_time(9) == pytest.approx(4 * 1e-5)

    def test_scan_includes_gamma(self, m):
        n = 1000
        assert m.scan_time(3, n) == pytest.approx(
            2 * (1e-5 + n * (2e-9 + 1e-9))
        )


class TestValidation:
    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1.0)
        with pytest.raises(ValueError):
            MachineModel(beta=-1e-9)

    def test_presets_valid(self):
        for preset in (TIANHE2_LIKE, LAPTOP_LIKE):
            assert preset.alpha > 0
            assert preset.allreduce_time(4, 1000) > 0

    def test_frozen(self, m):
        with pytest.raises(Exception):
            m.alpha = 2.0  # type: ignore[misc]


class TestCrossover:
    def test_crossover_trivial_for_two_ranks(self, m):
        assert m.allreduce_crossover_bytes(2) == 0.0

    def test_crossover_positive_for_larger_groups(self, m):
        x = m.allreduce_crossover_bytes(16)
        assert 0 < x < float("inf")

    def test_crossover_grows_with_latency(self):
        lo = MachineModel(alpha=1e-6, beta=1e-9, gamma=0.0)
        hi = MachineModel(alpha=1e-4, beta=1e-9, gamma=0.0)
        assert (
            hi.allreduce_crossover_bytes(8) > lo.allreduce_crossover_bytes(8)
        )
