"""Failure matrix of the multi-tenant job runner (``repro.serve``).

Every scenario from docs/serve.md: clean runs and cache hits, worker
crash mid-job (retried to success, resuming from checkpoints), poison
jobs (typed permanent failure, pool stays healthy), wedged workers
(heartbeat watchdog kill within deadline), queue-full shedding, cache
corruption quarantine, and the degradation ladder down to thread-mode
workers.  All chaos is declarative and seeded — no sleeps-and-hope.
"""
import pytest

from repro.serve import (
    JobServer,
    JobSpec,
    ServerBusy,
)

#: generous wall-clock ceiling per result on a loaded 1-vCPU CI box
WAIT = 120.0


def small_server(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("heartbeat_timeout", 10.0)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("backoff_max", 0.05)
    return JobServer(tmp_path / "cache", **kw)


class TestHappyPath:
    def test_clean_job_then_cache_hit_bit_identical(self, tmp_path):
        with small_server(tmp_path) as srv:
            spec = JobSpec(name="clean", nsteps=2)
            cold = srv.submit(spec).result(timeout=WAIT)
            assert cold.ok and not cold.cache_hit and cold.attempts == 1
            assert cold.artifact.exists()
            hit = srv.submit(spec).result(timeout=WAIT)
            assert hit.ok and hit.cache_hit
            assert hit.state_digest == cold.state_digest
            assert srv.counter_value("serve_cache_hits_total") == 1

    def test_concurrent_duplicates_coalesce(self, tmp_path):
        with small_server(tmp_path) as srv:
            spec = JobSpec(name="dup", nsteps=3)
            handles = [srv.submit(spec) for _ in range(3)]
            results = [h.result(timeout=WAIT) for h in handles]
            assert all(r.ok for r in results)
            assert len({r.state_digest for r in results}) == 1
            # exactly one execution; the rest piggybacked or hit the cache
            assert srv.counter_value("serve_jobs_total", status="ok") == 3
            piggybacked = srv.counter_value(
                "serve_coalesced_total"
            ) + srv.counter_value("serve_cache_hits_total")
            assert piggybacked == 2

    def test_submit_after_close_raises(self, tmp_path):
        srv = small_server(tmp_path)
        srv.close()
        with pytest.raises(RuntimeError):
            srv.submit(JobSpec())


class TestFailureMatrix:
    def test_crash_mid_job_retried_resumes_and_succeeds(self, tmp_path):
        with small_server(tmp_path) as srv:
            crash = JobSpec(
                name="crashy", nsteps=3,
                chaos={"kind": "crash", "attempts": [1], "after_chunks": 2},
            )
            r = srv.submit(crash).result(timeout=WAIT)
            assert r.ok and r.attempts == 2
            # attempt 2 resumed from attempt 1's committed checkpoints
            assert r.resumed_from_step == 2
            assert srv.counter_value(
                "serve_retries_total", reason="WorkerCrash"
            ) == 1
            # ...and produced exactly the bits of an undisturbed run
            clean = srv.submit(
                JobSpec(name="undisturbed", nsteps=3)
            ).result(timeout=WAIT)
            assert clean.ok
            assert clean.state_digest == r.state_digest

    def test_poison_job_typed_failure_pool_stays_healthy(self, tmp_path):
        with small_server(tmp_path, max_retries=1) as srv:
            r = srv.submit(
                JobSpec(name="poison", chaos={"kind": "poison"})
            ).result(timeout=WAIT)
            assert r.status == "failed"
            assert r.error_type == "JobPoisoned"
            assert r.attempts == 2  # max_retries + 1, then typed failure
            after = srv.submit(JobSpec(name="after")).result(timeout=WAIT)
            assert after.ok

    def test_wedged_worker_killed_within_deadline(self, tmp_path):
        import time

        with small_server(tmp_path, heartbeat_timeout=1.0) as srv:
            t0 = time.monotonic()
            r = srv.submit(
                JobSpec(name="wedge", nsteps=2,
                        chaos={"kind": "wedge", "attempts": [1]})
            ).result(timeout=WAIT)
            elapsed = time.monotonic() - t0
            assert r.ok and r.watchdog_kills == 1 and r.attempts == 2
            # one heartbeat window + retry, not the 3600s chaos sleep
            assert elapsed < 60.0
            assert srv.counter_value("serve_watchdog_kills_total") == 1

    def test_rankloss_job_heals_in_place_without_a_retry(self, tmp_path):
        """A permanent simulated-rank loss is healed by the elastic tier
        INSIDE the running attempt: the job completes on the shrunken
        layout, no worker retry is consumed, and no shm segments leak."""
        from repro.simmpi.shm import live_segment_names

        with small_server(tmp_path) as srv:
            spec = JobSpec(
                name="rankloss", algorithm="original-yz",
                nx=32, ny=16, nz=8, nsteps=4, nprocs=4,
                m_iterations=1, checkpoint_interval=2,
                rank_loss_policy="shrink",
                chaos={"kind": "rankloss", "rank": 1, "at_call": 30},
            )
            r = srv.submit(spec).result(timeout=WAIT)
            assert r.ok
            assert r.attempts == 1          # no worker retry consumed
            assert r.rank_losses == 1
            assert r.membership_epoch == 1
            assert r.final_nranks == 3      # finished on the survivors
            assert r.restarts >= 1          # ...via one in-job recovery
            assert srv.counter_value(
                "serve_retries_total", reason="WorkerCrash"
            ) == 0
        assert live_segment_names() == []

    def test_rankloss_spec_requires_distributed_job(self):
        with pytest.raises(ValueError, match="nprocs >= 2"):
            JobSpec(name="bad", nprocs=1,
                    chaos={"kind": "rankloss", "rank": 1})
        with pytest.raises(ValueError, match="rank_loss_policy"):
            JobSpec(name="bad2", rank_loss_policy="panic")

    def test_queue_full_sheds_with_typed_error(self, tmp_path):
        with small_server(tmp_path, max_queue=1) as srv:
            specs = [
                JobSpec(name=f"burst-{i}", nsteps=6, amplitude_k=1.0 + i)
                for i in range(6)
            ]
            shed = 0
            handles = []
            for spec in specs:
                try:
                    handles.append(srv.submit(spec))
                except ServerBusy as exc:
                    shed += 1
                    assert exc.limit == 1 and exc.depth >= 1
            assert shed >= 1
            assert srv.counter_value("serve_shed_total") == shed
            # admitted jobs all complete; shed ones never got a handle
            assert all(h.result(timeout=WAIT).ok for h in handles)

    def test_corrupt_cache_entry_quarantined_and_recomputed(self, tmp_path):
        with small_server(tmp_path) as srv:
            spec = JobSpec(name="corruptme", nsteps=2)
            cold = srv.submit(spec).result(timeout=WAIT)
            srv.cache.corrupt_entry_for_test(cold.key)
            redo = srv.submit(spec).result(timeout=WAIT)
            assert redo.ok and not redo.cache_hit
            assert redo.state_digest == cold.state_digest
            assert len(srv.cache.quarantined()) >= 1
            assert srv.counter_value("serve_cache_corrupt_total") == 1
            # and the recomputed entry serves hits again
            again = srv.submit(spec).result(timeout=WAIT)
            assert again.ok and again.cache_hit


class _NoFork(JobServer):
    """A server whose process substrate is broken (degradation testing)."""

    def _start_worker_process(self, w):
        raise OSError("injected: process pool unavailable")


class TestDegradation:
    def test_falls_back_to_threads_and_keeps_serving(self, tmp_path):
        with _NoFork(tmp_path / "cache", workers=1,
                     backoff_base=0.01, backoff_max=0.05) as srv:
            assert srv.executor == "thread"
            assert srv.counter_value("serve_downgrades_total") >= 1
            r = srv.submit(JobSpec(name="degraded")).result(timeout=WAIT)
            assert r.ok

    def test_thread_mode_contains_chaos_crash(self, tmp_path):
        # allow_exit=False in degraded mode: a chaos "crash" becomes an
        # in-worker exception — retried like any failure, server intact
        with _NoFork(tmp_path / "cache", workers=1,
                     backoff_base=0.01, backoff_max=0.05) as srv:
            r = srv.submit(
                JobSpec(name="tcrash", nsteps=2,
                        chaos={"kind": "crash", "attempts": [1]})
            ).result(timeout=WAIT)
            assert r.ok and r.attempts == 2


class TestIsolation:
    def test_no_cross_tenant_leakage(self, tmp_path):
        """Jobs sharing physics produce identical bits regardless of
        tenant name, chaos, or execution history; different physics
        never collide."""
        with small_server(tmp_path, workers=2) as srv:
            specs = [
                JobSpec(name="t1", nsteps=2, amplitude_k=1.0),
                JobSpec(name="t2", nsteps=2, amplitude_k=1.0,
                        chaos={"kind": "crash", "attempts": [1]}),
                JobSpec(name="t3", nsteps=2, amplitude_k=2.0),
            ]
            results = [
                srv.submit(s).result(timeout=WAIT) for s in specs
            ]
            assert all(r.ok for r in results)
            same, chaotic, different = results
            assert specs[0].physics_key() == specs[1].physics_key()
            assert same.state_digest == chaotic.state_digest
            assert different.state_digest != same.state_digest
