"""Model parameters and physical constants."""
import math

import pytest

from repro import constants
from repro.constants import ModelParameters


class TestPhysicalConstants:
    def test_kappa_is_r_over_cp(self):
        assert constants.KAPPA == pytest.approx(
            constants.R_DRY / constants.CP_DRY
        )

    def test_paper_values(self):
        # the constants Sec. 2.1 quotes explicitly
        assert constants.B_GRAVITY_WAVE == 87.8
        assert constants.P_REFERENCE == 1000.0e2
        assert constants.P_TOP == 2.2e2
        assert constants.K_SA == 0.1

    def test_top_pressure_below_reference(self):
        assert constants.P_TOP < constants.P_REFERENCE


class TestModelParameters:
    def test_defaults_consistent_split(self):
        p = ModelParameters()
        assert p.dt_advection == pytest.approx(
            p.m_iterations * p.dt_adaptation
        )

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError):
            ModelParameters(dt_adaptation=0.0)
        with pytest.raises(ValueError):
            ModelParameters(dt_advection=-1.0)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            ModelParameters(m_iterations=0)

    def test_rejects_bad_filter_latitude(self):
        with pytest.raises(ValueError):
            ModelParameters(filter_latitude=math.pi / 2)
        with pytest.raises(ValueError):
            ModelParameters(filter_latitude=-0.1)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            ModelParameters(smoothing_beta=1.5)

    def test_frozen(self):
        p = ModelParameters()
        with pytest.raises(Exception):
            p.m_iterations = 5  # type: ignore[misc]
