"""Collectives and sub-communicators of the simulated cluster."""
import numpy as np
import pytest

from repro.simmpi import MachineModel, run_spmd


class TestWorldCollectives:
    def test_allreduce_sum(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank + 1)))

        res = run_spmd(4, prog)
        for out in res.results:
            assert np.allclose(out, 10.0)

    def test_allreduce_max_min(self):
        def prog(comm):
            hi = comm.allreduce(np.array([float(comm.rank)]), op="max")
            lo = comm.allreduce(np.array([float(comm.rank)]), op="min")
            return float(hi[0]), float(lo[0])

        res = run_spmd(3, prog)
        assert all(r == (2.0, 0.0) for r in res.results)

    def test_bcast(self):
        def prog(comm):
            payload = np.arange(4.0) if comm.rank == 1 else None
            return comm.bcast(payload, root=1)

        res = run_spmd(3, prog)
        for out in res.results:
            assert np.array_equal(out, np.arange(4.0))

    def test_allgather_ordered(self):
        def prog(comm):
            pieces = comm.allgather(np.array([float(comm.rank)]))
            return [float(p[0]) for p in pieces]

        res = run_spmd(4, prog)
        assert all(r == [0.0, 1.0, 2.0, 3.0] for r in res.results)

    def test_barrier_aligns_clocks(self):
        def prog(comm):
            comm.compute(0.1 * (comm.rank + 1))
            comm.barrier()
            return comm.clock

        res = run_spmd(3, prog)
        assert len(set(res.clocks)) == 1
        assert res.clocks[0] >= 0.3

    def test_allreduce_deterministic_order(self):
        """Reduction accumulates in rank order regardless of arrival."""
        def prog(comm):
            comm.compute(0.01 * ((comm.rank * 7) % comm.size))
            return comm.allreduce(np.array([10.0 ** -comm.rank]))

        r1 = run_spmd(4, prog)
        r2 = run_spmd(4, prog)
        assert float(r1.results[0][0]) == float(r2.results[0][0])


class TestSubCommunicators:
    def test_split_groups(self):
        def prog(comm):
            mates = [r for r in range(comm.size) if r % 2 == comm.rank % 2]
            sub = comm.subcomm(mates)
            total = sub.allreduce(np.array([float(comm.rank)]))
            return float(total[0])

        res = run_spmd(4, prog)
        assert res.results == [2.0, 4.0, 2.0, 4.0]

    def test_subcomm_rank_and_size(self):
        def prog(comm):
            sub = comm.subcomm([1, 2]) if comm.rank in (1, 2) else None
            return (sub.rank, sub.size) if sub else None

        res = run_spmd(3, prog)
        assert res.results[1] == (0, 2)
        assert res.results[2] == (1, 2)

    def test_subcomm_requires_membership(self):
        def prog(comm):
            if comm.rank == 0:
                comm.subcomm([1, 2])

        with pytest.raises(Exception):
            run_spmd(3, prog)

    def test_exscan(self):
        def prog(comm):
            out = comm.world_comm().exscan(np.array([float(comm.rank + 1)]))
            return float(out[0])

        res = run_spmd(4, prog)
        assert res.results == [0.0, 1.0, 3.0, 6.0]

    def test_reduce_root_only(self):
        def prog(comm):
            out = comm.world_comm().reduce(np.array([1.0]), root=2)
            return None if out is None else float(out[0])

        res = run_spmd(3, prog)
        assert res.results == [None, None, 3.0]

    def test_single_rank_group_free(self):
        def prog(comm):
            sub = comm.subcomm([comm.rank])
            out = sub.allreduce(np.array([5.0]))
            return float(out[0])

        res = run_spmd(2, prog)
        assert res.results == [5.0, 5.0]
        assert all(s.collective_ops == 0 for s in res.stats)


class TestCollectiveCosts:
    def test_allreduce_ring_cost(self):
        machine = MachineModel(alpha=1e-3, beta=1e-8, gamma=0.0)

        def prog(comm):
            comm.allreduce(np.zeros(1000))

        res = run_spmd(4, prog, machine=machine)
        n = 8000
        expected = 2 * 3 * 1e-3 + 2 * 3 / 4 * n * 1e-8
        assert res.clocks[0] == pytest.approx(expected)
        assert all(s.collective_ops == 1 for s in res.stats)
        assert all(s.synchronizations == 1 for s in res.stats)

    def test_collective_includes_straggler_wait(self):
        machine = MachineModel(alpha=0.0, beta=0.0, gamma=0.0)

        def prog(comm):
            comm.compute(1.0 if comm.rank == 0 else 0.0)
            comm.allreduce(np.zeros(4))
            return comm.clock

        res = run_spmd(3, prog, machine=machine)
        assert all(c == pytest.approx(1.0) for c in res.clocks)
        # rank 1 and 2 waited the full second inside the collective
        assert res.stats[1].collective_time == pytest.approx(1.0)

    def test_allgather_obj_zero_bytes(self):
        def prog(comm):
            objs = comm.allgather_obj({"rank": comm.rank})
            return [o["rank"] for o in objs]

        res = run_spmd(3, prog)
        assert res.results[0] == [0, 1, 2]
        assert res.stats[0].collective_bytes == 0
