"""The smoothing operator S, its offset split, and the stability extension."""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.operators.smoothing import (
    DELTA4_COEFFS,
    FieldSmoother,
    OFFSETS_FULL,
    OFFSETS_L,
    OFFSETS_L_PRIME,
    OFFSETS_R,
    OFFSETS_R_PRIME,
    delta4_x,
    p1,
    p2,
    smooth_full,
    smooth_state,
    smoothers_for,
)
from repro.state.variables import ModelState


class TestDelta4:
    def test_annihilates_cubics(self):
        i = np.arange(16.0)
        a = np.broadcast_to(i**3, (2, 3, 16)).copy()
        out = delta4_x(a)
        # interior (away from the periodic seam)
        assert np.allclose(out[..., 4:-4], 0.0, atol=1e-9)

    def test_two_grid_wave_eigenvalue(self):
        """delta^4 of (-1)^i is 16 (-1)^i."""
        i = np.arange(16)
        a = np.broadcast_to((-1.0) ** i, (1, 2, 16)).copy()
        assert np.allclose(delta4_x(a), 16.0 * a)

    def test_coefficients(self):
        assert DELTA4_COEFFS == (1.0, -4.0, 6.0, -4.0, 1.0)
        assert sum(DELTA4_COEFFS) == 0.0


class TestPaperOperators:
    def test_p1_damps_two_grid_wave(self):
        beta = 0.1
        i = np.arange(16)
        a = np.broadcast_to((-1.0) ** i, (1, 2, 16)).copy()
        out = p1(a, beta)
        assert np.allclose(out, (1.0 - beta) * a)

    def test_p2_constant_preserved(self):
        a = np.full((2, 8, 8), 3.5)
        assert np.allclose(p2(a, 0.2)[..., 2:-2, :], 3.5)

    def test_p2_reduces_checkerboard(self, rng):
        j = np.arange(12)
        i = np.arange(16)
        checker = ((-1.0) ** j)[None, :, None] * ((-1.0) ** i)[None, None, :]
        a = np.broadcast_to(checker, (1, 12, 16)).copy()
        out = p2(a, 0.1)
        # (1 - b)(1 - b) + corrections: strictly smaller amplitude
        assert np.abs(out[..., 3:-3, :]).max() < np.abs(a).max()


class TestOffsetSplit:
    @pytest.mark.parametrize(
        "smoother",
        [
            FieldSmoother(beta_x=0.1, beta_y=0.1, cross=True),
            FieldSmoother(beta_x=0.1, beta_y=0.2, cross=False),
            FieldSmoother(beta_x=0.3, beta_y=0.0, cross=False),
        ],
    )
    def test_offsets_sum_to_full(self, smoother, rng):
        a = rng.standard_normal((2, 10, 12))
        total = smoother.partial(a, OFFSETS_FULL)
        assert np.allclose(total, smoother.full(a), rtol=1e-13, atol=1e-13)

    def test_former_later_decomposition(self, rng):
        """S~_L + S~'_L == S == S~_R + S~'_R (Eq. 14 split)."""
        sm = FieldSmoother(beta_x=0.1, beta_y=0.1, cross=True)
        a = rng.standard_normal((2, 10, 12))
        full = sm.full(a)
        left = sm.partial(a, OFFSETS_L) + sm.partial(a, OFFSETS_L_PRIME)
        right = sm.partial(a, OFFSETS_R) + sm.partial(a, OFFSETS_R_PRIME)
        assert np.allclose(left, full, rtol=1e-13, atol=1e-13)
        assert np.allclose(right, full, rtol=1e-13, atol=1e-13)

    def test_partial_rejects_empty(self):
        sm = FieldSmoother(beta_x=0.1, beta_y=0.1, cross=True)
        with pytest.raises(ValueError):
            sm.partial(np.zeros((2, 4, 4)), ())

    def test_zero_offset_only_needs_no_neighbours(self, rng):
        """S~_0 must not read other rows: row-local check."""
        sm = FieldSmoother(beta_x=0.1, beta_y=0.1, cross=True)
        a = rng.standard_normal((1, 6, 8))
        b = a.copy()
        b[:, 3, :] += 1.0  # perturb one row
        da = sm.offset_term(a, 0)
        db = sm.offset_term(b, 0)
        diff_rows = np.where(np.any(da != db, axis=(0, 2)))[0]
        assert list(diff_rows) == [3]


class TestStateSmoothing:
    def test_smooth_full_paper_exact(self, rng):
        s = ModelState.random((2, 8, 10), rng)
        out = smooth_full(s, beta=0.1, beta_y_uv=0.0)
        assert np.allclose(out.U, p1(s.U, 0.1))
        assert np.allclose(out.Phi, p2(s.Phi, 0.1))

    def test_smoothers_for_params(self):
        params = ModelParameters(smoothing_beta=0.2, smoothing_beta_y_uv=0.05)
        sm = smoothers_for(params)
        assert sm["U"].beta_y == 0.05
        assert not sm["U"].cross
        assert sm["Phi"].cross
        assert sm["Phi"].beta_y == 0.2
        assert sm["U"] is sm["V"]

    def test_smooth_state_uses_extension(self, rng):
        s = ModelState.random((2, 8, 10), rng)
        params = ModelParameters(smoothing_beta=0.1, smoothing_beta_y_uv=0.1)
        out = smooth_state(s, params)
        paper = smooth_full(s, 0.1, beta_y_uv=0.0)
        # scalars identical, winds differ (the y-damping extension)
        assert np.allclose(out.Phi, paper.Phi)
        assert not np.allclose(out.U, paper.U)

    def test_has_y_stencil_flag(self):
        assert not FieldSmoother(0.1, 0.0, cross=False).has_y_stencil
        assert FieldSmoother(0.1, 0.1, cross=False).has_y_stencil
