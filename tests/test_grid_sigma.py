"""Sigma vertical levels."""
import numpy as np
import pytest

from repro.grid.sigma import SigmaLevels


class TestUniform:
    def test_basic(self):
        s = SigmaLevels.uniform(5)
        assert s.nz == 5
        assert np.allclose(s.dsigma, 0.2)
        assert s.interfaces[0] == 0.0
        assert s.interfaces[-1] == 1.0

    def test_mid_between_interfaces(self):
        s = SigmaLevels.uniform(4)
        assert np.all(s.mid > s.interfaces[:-1])
        assert np.all(s.mid < s.interfaces[1:])

    def test_thickness_sums_to_one(self):
        for nz in (1, 3, 10, 30):
            assert SigmaLevels.uniform(nz).dsigma.sum() == pytest.approx(1.0)


class TestStretched:
    def test_refines_toward_surface(self):
        s = SigmaLevels.stretched(10, stretch=2.0)
        assert s.dsigma[-1] < s.dsigma[0]
        assert s.dsigma.sum() == pytest.approx(1.0)

    def test_stretch_one_is_uniform(self):
        s = SigmaLevels.stretched(6, stretch=1.0)
        assert np.allclose(s.dsigma, 1.0 / 6.0)

    def test_rejects_bad_stretch(self):
        with pytest.raises(ValueError):
            SigmaLevels.stretched(5, stretch=0.0)


class TestValidation:
    def test_rejects_wrong_range(self):
        with pytest.raises(ValueError):
            SigmaLevels(np.array([0.1, 0.5, 1.0]))
        with pytest.raises(ValueError):
            SigmaLevels(np.array([0.0, 0.5, 0.9]))

    def test_rejects_nonmonotone(self):
        with pytest.raises(ValueError):
            SigmaLevels(np.array([0.0, 0.6, 0.4, 1.0]))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            SigmaLevels(np.array([0.5]))

    def test_weights_are_copies(self):
        s = SigmaLevels.uniform(4)
        w = s.thickness_weights()
        w[0] = 99.0
        assert s.dsigma[0] == pytest.approx(0.25)
