"""Elastic rank-loss recovery acceptance: the full detect→rebuild→migrate path.

The ISSUE-9 acceptance criteria, as tests:

* permanent loss of 1 of 4 ranks mid-run completes without abort on the
  thread AND process backends, for the original-yz AND ca algorithms,
  under both the ``spare`` and ``shrink`` policies;
* the post-recovery trajectory is bit-identical to a fault-free run at
  the recovered rank layout resumed from the same chunk boundary;
* SDC mass/energy acceptance gates pass across the recovery;
* no shm segments leak when the loss kills a process-backend rank;
* the flight-recorder dump of the killed rank names it.
"""
import os

import pytest

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore
from repro.core.resilience import (
    ResilienceConfig,
    ResilienceExhausted,
    run_resilient,
)
from repro.grid.latlon import LatLonGrid
from repro.obs import flightrec
from repro.physics import perturbed_rest_state
from repro.simmpi import FaultPlan, NodeLoss
from repro.simmpi.shm import live_segment_names, sweep_stale_segments

NSTEPS = 4
NPROCS = 4
CHUNK = 2

#: grids sized so 4-way AND 3-way (post-shrink) Y-Z layouts satisfy the
#: CA wide-halo requirement ny/p_y > 3M + 2
GRIDS = {
    "original-yz": dict(nx=32, ny=16, nz=8),
    "ca": dict(nx=32, ny=32, nz=6),
}


@pytest.fixture(scope="module")
def params():
    return ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )


def make_core(algorithm, params, nprocs=NPROCS, **kw):
    grid = LatLonGrid(**GRIDS[algorithm])
    return DynamicalCore(
        grid, algorithm=algorithm, nprocs=nprocs, params=params, **kw
    )


def loss_plan(ranks=(1,), at_call=30):
    return FaultPlan(
        seed=7,
        node_losses=tuple(
            NodeLoss(rank=r, at_call=at_call + i)
            for i, r in enumerate(ranks)
        ),
    )


def run(core, tmp_path, policy, *, spares=0, faults=None, nsteps=NSTEPS,
        sdc=True, max_restarts=4):
    grid = core.config.grid
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    rcfg = ResilienceConfig(
        checkpoint_dir=tmp_path / "ck",
        checkpoint_interval=CHUNK,
        max_restarts=max_restarts,
        rank_loss_policy=policy,
        spare_ranks=spares,
        faults=faults,
        # absolute mass / fractional energy gates wide enough for the
        # model's clean per-chunk drift, tight enough to catch corruption
        sdc_mass_tol=1e-3 if sdc else None,
        sdc_energy_tol=0.5 if sdc else None,
    )
    return run_resilient(core, state0, nsteps, rcfg)


class TestAcceptanceMatrix:
    """1-of-4 loss mid-run completes under every (backend, algorithm,
    policy) combination, with the SDC gates armed throughout."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    @pytest.mark.parametrize("policy", ["spare", "shrink"])
    def test_one_of_four_lost_midrun_completes(
        self, tmp_path, params, backend, algorithm, policy
    ):
        core = make_core(algorithm, params, backend=backend)
        final, diag, report = run(
            core, tmp_path, policy, spares=1, faults=loss_plan()
        )
        assert len(report.rank_losses) == 1
        rl = report.rank_losses[0]
        assert rl.lost == (1,)
        assert rl.policy == policy
        assert rl.mttr > 0.0
        assert report.membership_epoch == 1
        assert report.final_nranks == (4 if policy == "spare" else 3)
        assert report.recovery_time > 0.0
        assert final.isfinite()
        # no SDC rejections: the gates accepted every recovered chunk
        assert not any(r.kind == "sdc" for r in report.restarts)

    def test_abort_policy_raises_on_permanent_loss(self, tmp_path, params):
        core = make_core("original-yz", params)
        with pytest.raises(ResilienceExhausted, match="permanently lost"):
            run(core, tmp_path, "abort", faults=loss_plan())


class TestTrajectoryBitIdentity:
    def _reference(self, params, algorithm, segments, state0):
        """Fault-free chunked trajectory across rank-layout segments.

        ``segments`` is ``[(nprocs, until_step), ...]``: run at each
        layout up to the given global step, chunked exactly like the
        resilient driver (``CHUNK`` steps per chunk, same transport), so
        CA's chunk-boundary-sensitive smoothing schedule matches.
        """
        transport = ResilienceConfig(checkpoint_dir="/unused").transport
        state, step = state0, 0
        for nprocs, until in segments:
            core = make_core(algorithm, params, nprocs=nprocs)
            while step < until:
                chunk = min(CHUNK, NSTEPS - step)
                state, _, _ = core._run_once(
                    state, chunk, faults=None, verify_checksums=True,
                    transport=transport, timeout=None, step0=step,
                )
                step += chunk
        return state

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_spare_recovery_matches_fault_free_run(
        self, tmp_path, params, algorithm
    ):
        """Spare adoption keeps the layout, so the whole recovered run
        must be bit-identical to a fault-free 4-rank run."""
        core = make_core(algorithm, params)
        state0 = perturbed_rest_state(core.config.grid, amplitude_k=2.0)
        recovered, _, report = run(
            core, tmp_path, "spare", spares=1, faults=loss_plan()
        )
        assert report.spare_adoptions == 1
        clean = self._reference(params, algorithm, [(4, NSTEPS)], state0)
        assert recovered.max_difference(clean) == 0.0

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_shrink_recovery_matches_fault_free_run_at_new_layout(
        self, tmp_path, params, algorithm
    ):
        """After a shrink, the trajectory must equal: fault-free 4-rank
        run to the recovery chunk boundary, then fault-free 3-rank run
        for the remaining steps — resumed from that same boundary."""
        core = make_core(algorithm, params)
        state0 = perturbed_rest_state(core.config.grid, amplitude_k=2.0)
        recovered, _, report = run(
            core, tmp_path, "shrink", faults=loss_plan()
        )
        assert report.shrinks == 1
        boundary = report.rank_losses[0].step
        ref = self._reference(
            params, algorithm, [(4, boundary), (3, NSTEPS)], state0
        )
        assert recovered.max_difference(ref) == 0.0

    def test_recovery_is_seed_deterministic(self, tmp_path, params):
        """Same seed, same loss, same recovered trajectory and MTTR."""
        runs = []
        for i in range(2):
            core = make_core("original-yz", params)
            runs.append(run(
                core, tmp_path / str(i), "shrink", faults=loss_plan()
            ))
        (s_a, d_a, r_a), (s_b, d_b, r_b) = runs
        assert s_a.max_difference(s_b) == 0.0
        assert d_a.makespan == d_b.makespan
        assert r_a.rank_losses[0].mttr == r_b.rank_losses[0].mttr


class TestDoubleFaultEscalation:
    def test_owner_and_buddy_lost_escalates_to_disk(self, tmp_path, params):
        """Losing rank 1 AND its buddy rank 2 defeats the mirror: the
        elastic tier must restore from disk and still rebuild."""
        core = make_core("original-yz", params)
        final, _, report = run(
            core, tmp_path, "shrink", faults=loss_plan(ranks=(1, 2)),
        )
        assert len(report.rank_losses) == 1
        rl = report.rank_losses[0]
        assert rl.lost == (1, 2)
        assert rl.source == "disk"
        assert report.disk_rollbacks == 1
        assert report.final_nranks == 2
        assert final.isfinite()

    def test_spare_pool_dry_falls_back_to_shrink(self, tmp_path, params):
        core = make_core("original-yz", params)
        _, _, report = run(
            core, tmp_path, "spare", spares=0, faults=loss_plan()
        )
        assert report.shrinks == 1
        assert report.spare_adoptions == 0
        assert report.final_nranks == 3


class TestProcessBackendHygiene:
    def test_no_stale_shm_segments_after_injected_node_loss(
        self, tmp_path, params
    ):
        """Satellite: the SIGKILLed rank must not leave /dev/shm litter —
        the parent unlinks its segments on the supervised exit path."""
        core = make_core("original-yz", params, backend="process")
        _, _, report = run(core, tmp_path, "shrink", faults=loss_plan())
        assert report.shrinks == 1
        assert live_segment_names() == []

    def test_sweep_reclaims_dead_owner_segments(self, tmp_path):
        """A segment whose creator pid is gone is stale by definition and
        must be swept; a live owner's segment must survive the sweep."""
        from multiprocessing import shared_memory

        from repro.simmpi.shm import SEGMENT_PREFIX

        # fabricate an orphan: named like ours but owned by a dead pid
        dead_pid = 2 ** 22 + 12345  # far above pid_max defaults
        orphan = shared_memory.SharedMemory(
            name=f"{SEGMENT_PREFIX}-{dead_pid}-deadbeef-rings",
            create=True, size=64,
        )
        orphan.close()
        live = shared_memory.SharedMemory(
            name=f"{SEGMENT_PREFIX}-{os.getpid()}-cafecafe-rings",
            create=True, size=64,
        )
        try:
            swept = sweep_stale_segments()
            names = live_segment_names()
            assert f"{SEGMENT_PREFIX}-{dead_pid}-deadbeef-rings" not in names
            assert f"{SEGMENT_PREFIX}-{os.getpid()}-cafecafe-rings" in names
            assert any(str(dead_pid) in s for s in swept)
        finally:
            live.close()
            live.unlink()

    def test_lost_rank_flight_dump_names_the_rank(self, tmp_path, params):
        """The killed rank dumps its flight ring before dying; the dump
        must name the lost rank."""
        from repro.obs.flightrec import load_dump

        prev = flightrec.get_recorder()
        flightrec.install(
            tmp_path / "flight" / "run.json", signals=False, logs=False,
        )
        try:
            core = make_core("original-yz", params, backend="process")
            _, _, report = run(core, tmp_path, "shrink", faults=loss_plan())
            assert report.shrinks == 1
        finally:
            flightrec._installed = prev
        dumps = sorted((tmp_path / "flight").glob("*lostrank1*"))
        assert dumps, "the killed rank left no flight dump"
        doc = load_dump(dumps[0])
        assert "rank 1" in doc["reason"]
        assert any(
            ev.get("kind") == "node-loss" and ev.get("rank") == 1
            for ev in doc["events"]
        )


class TestObservability:
    def test_recovery_metrics_and_spans(self, tmp_path, params):
        core = make_core("original-yz", params, observe=True)
        _, _, report = run(core, tmp_path, "shrink", faults=loss_plan())
        obs = core.observation
        reg = obs.registry
        assert reg.counter(
            "resilience_rank_losses_total", policy="shrink"
        ).value == 1
        assert reg.gauge("membership_epoch").value == 1
        hist = reg.histogram("recovery_mttr_seconds")
        assert hist.count == 1
        assert hist.sum == report.rank_losses[0].mttr
        names = {s.name for s in obs.tracer.spans}
        assert {"failure-detect", "membership-rebuild",
                "block-migrate"} <= names

    def test_mttr_lands_in_the_makespan(self, tmp_path, params):
        core = make_core("original-yz", params)
        _, diag, report = run(core, tmp_path, "shrink", faults=loss_plan())
        clean_core = make_core("original-yz", params)
        _, clean_diag, _ = run(clean_core, tmp_path / "clean", "shrink")
        assert report.recovery_time > 0.0
        assert diag.makespan > clean_diag.makespan
