"""Property-based tests: decompositions tile the mesh for arbitrary sizes."""
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.grid.decomposition import Decomposition, balanced_partition


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 500), parts=st.integers(1, 32))
def test_balanced_partition_invariants(n, parts):
    if parts > n:
        return
    bounds = balanced_partition(n, parts)
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    sizes = [b - a for a, b in bounds]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    assert all(s > 0 for s in sizes)


decomps = st.tuples(
    st.integers(4, 40),  # nx (even)
    st.integers(3, 30),  # ny
    st.integers(1, 12),  # nz
    st.integers(1, 4),   # px
    st.integers(1, 4),   # py
    st.integers(1, 4),   # pz
)


@settings(max_examples=60, deadline=None)
@given(params=decomps)
def test_extents_partition_exactly(params):
    nx, ny, nz, px, py, pz = params
    nx *= 2  # even
    if px > nx or py > ny or pz > nz:
        return
    d = Decomposition(nx, ny, nz, px, py, pz)
    cover = np.zeros((nz, ny, nx), dtype=np.int64)
    for ext in d.extents():
        cover[ext.slices3d()] += 1
    assert np.all(cover == 1)


@settings(max_examples=60, deadline=None)
@given(params=decomps)
def test_neighbour_relation_symmetric(params):
    nx, ny, nz, px, py, pz = params
    nx *= 2
    if px > nx or py > ny or pz > nz:
        return
    d = Decomposition(nx, ny, nz, px, py, pz)
    for rank in range(min(d.nranks, 8)):
        for key, nb in d.plane_neighbours(rank).items():
            back = d.plane_neighbours(nb)
            assert rank in back.values()


@settings(max_examples=40, deadline=None)
@given(params=decomps, seed=st.integers(0, 2**31 - 1))
def test_scatter_gather_roundtrip(params, seed):
    nx, ny, nz, px, py, pz = params
    nx *= 2
    if px > nx or py > ny or pz > nz:
        return
    d = Decomposition(nx, ny, nz, px, py, pz)
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((nz, ny, nx))
    blocks = [d.scatter(g, r) for r in range(d.nranks)]
    assert np.array_equal(d.gather(blocks), g)
