"""The figure-regeneration harness."""
import pytest

from repro.bench.harness import (
    fig1_comm_fraction,
    fig6_collective_time,
    fig7_stencil_time,
    fig8_total_runtime,
    small_scale_measured,
)
from repro.bench.figures import TARGETS, render_sec53, render_tables


class TestFigureSeries:
    def test_fig1_percentages(self):
        fig = fig1_comm_fraction(procs=[128, 512])
        assert fig.procs == [128, 512]
        for name, vals in fig.series.items():
            assert all(0.0 <= v <= 100.0 for v in vals)
        # comm% + comp% == 100 per algorithm
        for alg in ("original-xy", "original-yz"):
            comm = fig.series[f"{alg} comm%"]
            comp = fig.series[f"{alg} comp%"]
            assert all(c + p == pytest.approx(100.0) for c, p in zip(comm, comp))

    def test_fig6_7_8_have_three_series(self):
        for fig in (
            fig6_collective_time(procs=[128]),
            fig7_stencil_time(procs=[128]),
            fig8_total_runtime(procs=[128]),
        ):
            assert set(fig.series) == {"original-xy", "original-yz", "ca"}
            assert all(v[0] > 0 for v in fig.series.values())

    def test_render_contains_rows(self):
        text = fig8_total_runtime(procs=[128, 256]).render()
        assert "Figure 8" in text
        assert "ca" in text
        assert "128" in text and "256" in text


class TestTables:
    def test_tables_render(self):
        text = render_tables()
        assert "Table 1" in text and "Table 3" in text

    def test_sec53_renders(self):
        text = render_sec53()
        assert "W [words]" in text

    def test_all_targets_registered(self):
        assert set(TARGETS) == {
            "fig1", "fig2", "fig6", "fig7", "fig8", "tables", "sec53",
            "measured", "scaling", "sweeps", "imbalance",
        }

    def test_sweeps_and_imbalance_targets(self, capsys):
        from repro.bench.figures import main

        assert main(["sweeps", "imbalance"]) == 0
        out = capsys.readouterr().out
        assert "resolution sweep" in out and "imbalance" in out

    def test_fig2_target(self, capsys):
        from repro.bench.figures import main

        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "operator form" in out and "13 exchanges" in out

    def test_cli_main_runs_targets(self, capsys):
        from repro.bench.figures import main

        assert main(["fig8", "tables"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Table 1" in out

    def test_cli_rejects_unknown(self, capsys):
        from repro.bench.figures import main

        assert main(["nope"]) == 2

    def test_scaling_target(self, capsys):
        from repro.bench.figures import main

        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "original-3d" in out and "speedup" in out


class TestMeasured:
    def test_small_scale_comparison(self):
        points = small_scale_measured(nsteps=1)
        assert set(points) == {"original-xy", "original-yz", "ca"}
        for pt in points.values():
            assert pt.final_state.isfinite()
            assert pt.diagnostics.makespan > 0
        # the executed CA core beats the executed YZ original on
        # stencil communication time (the Figure 7 relation)
        assert (
            points["ca"].diagnostics.stencil_comm_time
            < points["original-yz"].diagnostics.stencil_comm_time
        )

    def test_states_agree_across_algorithms(self):
        points = small_scale_measured(nsteps=2)
        a = points["original-xy"].final_state
        b = points["original-yz"].final_state
        c = points["ca"].final_state
        assert a.max_difference(b) < 1e-12
        assert a.max_difference(c) < 1e-2  # approximate iteration
