"""The operator form of the calculating flow (Eq. 8 / Figure 2).

Crucial property: the schedule derived from the operator form must agree
with the *instrumented counters of the executed cores* — the abstraction
and the implementation describe the same algorithm.
"""
import pytest

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.operator_form import (
    render_flow,
    step_schedule,
)
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import run_spmd


class TestExpansion:
    def test_operator_counts_eq8(self):
        """(F L)^3 (F C A)^{3M}: 3M A's, 3M C's, 3 L's, 3M+3 F's, 1 S."""
        for M in (1, 2, 3):
            s = step_schedule("original", "yz", M)
            assert s.count("A") == 3 * M
            assert s.count("C") == 3 * M
            assert s.count("L") == 3
            assert s.count("F") == 3 * M + 3
            assert s.count("S") == 1

    def test_original_exchange_count(self):
        """3M + 3 + 1 = 13 exchanges for M = 3 (Sec. 5.2)."""
        s = step_schedule("original", "yz", 3)
        assert s.halo_exchanges == 13

    def test_ca_exchange_count(self):
        s = step_schedule("ca", "yz", 3)
        assert s.halo_exchanges == 2

    def test_collective_frequencies(self):
        orig = step_schedule("original", "yz", 3)
        ca = step_schedule("ca", "yz", 3)
        assert orig.z_collectives == 9
        assert ca.z_collectives == 6  # 2M: one stale C per iteration
        assert orig.x_collectives == 0  # x axis whole under Y-Z

    def test_xy_filter_collectives(self):
        s = step_schedule("original", "xy", 3)
        assert s.x_collectives == 3 * 3 + 3
        assert s.z_collectives == 0

    def test_3d_pays_both(self):
        s = step_schedule("original", "3d", 3)
        assert s.x_collectives > 0 and s.z_collectives > 0

    def test_synchronization_counts_ordering(self):
        """S_XY > S_YZ > S_CA — the Sec. 5.3 latency ordering, derived
        directly from the operator form."""
        s_xy = step_schedule("original", "xy", 3).synchronizations
        s_yz = step_schedule("original", "yz", 3).synchronizations
        s_ca = step_schedule("ca", "yz", 3).synchronizations
        assert s_xy > s_yz > s_ca

    def test_validation(self):
        with pytest.raises(ValueError):
            step_schedule("bogus", "yz")
        with pytest.raises(ValueError):
            step_schedule("original", "diagonal")
        with pytest.raises(ValueError):
            step_schedule("ca", "xy")


class TestAgainstExecutedCores:
    @pytest.fixture(scope="class")
    def executed(self):
        grid = LatLonGrid(nx=32, ny=16, nz=8)
        params = ModelParameters(
            dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
        )
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
        state0 = perturbed_rest_state(grid, amplitude_k=2.0)
        nsteps = 3
        out = {}
        for name, program in (
            ("original", original_rank_program), ("ca", ca_rank_program)
        ):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=nsteps
            )
            out[name] = run_spmd(decomp.nranks, program, cfg, state0)
        return nsteps, out

    def test_exchange_frequency_matches(self, executed):
        nsteps, out = executed
        sched_orig = step_schedule("original", "yz", 1)
        sched_ca = step_schedule("ca", "yz", 1)
        # executed original has one extra initial refresh
        assert (
            out["original"].results[0].exchanges
            == sched_orig.halo_exchanges * nsteps + 1
        )
        assert out["ca"].results[0].exchanges == sched_ca.halo_exchanges * nsteps

    def test_collective_frequency_matches(self, executed):
        nsteps, out = executed
        sched_orig = step_schedule("original", "yz", 1)
        sched_ca = step_schedule("ca", "yz", 1)
        assert (
            out["original"].results[0].c_calls
            == sched_orig.z_collectives * nsteps
        )
        # executed CA pays one cold-start C in the first step
        assert (
            out["ca"].results[0].c_calls
            == sched_ca.z_collectives * nsteps + 1
        )


class TestRendering:
    def test_flow_contains_sequence_and_totals(self):
        text = render_flow(step_schedule("original", "yz", 3))
        assert "13 exchanges" in text
        assert "9 z-collectives" in text
        text_ca = render_flow(step_schedule("ca", "yz", 3))
        assert "2 exchanges" in text_ca
        assert "6 z-collectives" in text_ca
