"""The latitude-longitude mesh."""
import numpy as np
import pytest

from repro import constants
from repro.grid.latlon import LatLonGrid, PAPER_GRID_SHAPE, paper_grid


class TestConstruction:
    def test_shapes(self, small_grid):
        assert small_grid.shape3d == (6, 16, 32)
        assert small_grid.shape2d == (16, 32)
        assert small_grid.npoints == 6 * 16 * 32

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            LatLonGrid(nx=2, ny=16, nz=4)
        with pytest.raises(ValueError):
            LatLonGrid(nx=16, ny=2, nz=4)

    def test_rejects_odd_nx(self):
        with pytest.raises(ValueError):
            LatLonGrid(nx=15, ny=8, nz=4)

    def test_paper_grid(self):
        g = paper_grid()
        assert (g.nx, g.ny, g.nz) == PAPER_GRID_SHAPE
        # ~50 km at the equator
        assert g.cell_dx().max() == pytest.approx(55_600, rel=0.02)


class TestCoordinates:
    def test_longitudes_cover_circle(self, small_grid):
        lon = small_grid.lon
        assert lon[0] == 0.0
        assert lon[-1] == pytest.approx(2 * np.pi - small_grid.dlambda)

    def test_colatitudes_offset_from_poles(self, small_grid):
        th = small_grid.theta_c
        assert th[0] == pytest.approx(small_grid.dtheta / 2)
        assert th[-1] == pytest.approx(np.pi - small_grid.dtheta / 2)
        assert np.all(np.diff(th) > 0)

    def test_v_rows_are_interfaces(self, small_grid):
        # V row j sits between centre rows j and j+1
        assert np.allclose(
            small_grid.theta_v[:-1],
            0.5 * (small_grid.theta_c[:-1] + small_grid.theta_c[1:]),
        )
        assert small_grid.theta_v[-1] == pytest.approx(np.pi)

    def test_latitude_degrees_symmetric(self, small_grid):
        lat = small_grid.latitude_degrees()
        assert np.allclose(lat, -lat[::-1])


class TestMetric:
    def test_areas_sum_to_sphere(self, small_grid):
        total = small_grid.cell_area().sum() * small_grid.nx
        assert total == pytest.approx(small_grid.total_area(), rel=1e-12)

    def test_areas_positive_and_equator_largest(self, small_grid):
        area = small_grid.cell_area()
        assert np.all(area > 0)
        assert area.argmax() in (small_grid.ny // 2 - 1, small_grid.ny // 2)

    def test_dx_collapses_at_poles(self, small_grid):
        dx = small_grid.cell_dx()
        assert dx[0] < dx[small_grid.ny // 2]
        assert dx[0] == dx.min() or dx[-1] == dx.min()

    def test_coriolis_sign(self, small_grid):
        # 2 Omega cos(theta): positive in the northern hemisphere
        f = small_grid.coriolis_centre()
        assert f[0] > 0
        assert f[-1] < 0
        assert abs(f[0]) == pytest.approx(abs(f[-1]))

    def test_dy_uniform(self, small_grid):
        assert small_grid.cell_dy() == pytest.approx(
            constants.EARTH_RADIUS * np.pi / small_grid.ny
        )
