"""The shared-memory process backend: bit-identical numerics and clean
failure semantics vs the thread backend.

The correctness bar of the process backend is exact equality: the same
seeded run must produce byte-for-byte identical trajectories, logical
clocks and per-rank communication statistics on both backends, for both
rank programs.  Failure semantics must match too — a crashing rank
process surfaces as :class:`SpmdError`, never as a hang.
"""
import os

import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core import DynamicalCore
from repro.grid import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import BACKENDS, CrashSpec, FaultPlan, SpmdError, run_spmd

#: M=1 keeps the CA halo requirement at gy=5, so 4 ranks fit small grids
PARAMS = ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)

#: (algorithm, grid) pairs feasible at both 2 and 4 ranks under PARAMS
CONFIGS = [
    ("original-yz", dict(nx=32, ny=16, nz=8)),
    ("ca", dict(nx=32, ny=32, nz=6)),
]


def _run(algorithm, grid_kw, nprocs, backend, nsteps=2):
    grid = LatLonGrid(**grid_kw)
    core = DynamicalCore(
        grid, algorithm=algorithm, nprocs=nprocs,
        params=PARAMS, backend=backend,
    )
    state, diag = core.run(perturbed_rest_state(grid, amplitude_k=2.0), nsteps)
    return state, diag


class TestBitIdentical:
    @pytest.mark.parametrize("algorithm,grid_kw", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_trajectories_equal(self, algorithm, grid_kw, nprocs):
        st, dt = _run(algorithm, grid_kw, nprocs, "thread")
        sp, dp = _run(algorithm, grid_kw, nprocs, "process")
        for field in ("U", "V", "Phi", "psa"):
            a, b = getattr(st, field), getattr(sp, field)
            assert np.array_equal(a, b), field
        assert dt.makespan == dp.makespan
        assert dt.exchanges == dp.exchanges
        assert dt.p2p_messages == dp.p2p_messages
        assert dt.p2p_bytes == dp.p2p_bytes

    def test_exchange_count_invariant(self):
        """CA does 2 exchanges/step vs the original's many on both backends.

        (At the paper's M=3 the original does 13; PARAMS uses M=1 to fit
        small grids, where it does 8 — the CA count is M-independent.)
        """
        for backend in BACKENDS:
            _, d_orig = _run("original-yz", CONFIGS[0][1], 2, backend, nsteps=1)
            _, d_ca = _run("ca", CONFIGS[1][1], 2, backend, nsteps=1)
            assert d_orig.exchanges == 8
            assert d_ca.exchanges == 2


class TestCollectives:
    def test_collectives_and_clocks_match(self):
        def program(comm):
            x = np.full(3, float(comm.rank + 1))
            total = comm.allreduce(x)
            gathered = comm.allgather(np.array([float(comm.rank)]))
            comm.barrier()
            comm.compute(1e-4)
            return total.sum() + sum(g.sum() for g in gathered)

        rt = run_spmd(4, program, backend="thread")
        rp = run_spmd(4, program, backend="process")
        assert rt.results == rp.results
        assert rt.clocks == rp.clocks
        for a, b in zip(rt.stats, rp.stats):
            assert a.collective_ops == b.collective_ops
            assert a.collective_time == b.collective_time


class TestSmallRings:
    def test_streams_messages_larger_than_ring(self):
        """Payloads beyond the per-link ring capacity stream in chunks."""
        def program(comm):
            payload = np.arange(65536, dtype=np.float64) + comm.rank
            peer = 1 - comm.rank
            # both ranks bulk-send first: exercises the writer-drains-own-
            # incoming path that keeps mutual sends deadlock-free
            comm.send(peer, payload, tag=7)
            got = comm.recv(peer, tag=7)
            return float(got[0])

        res = run_spmd(2, program, backend="process", shm_link_bytes=4096)
        assert res.results == [1.0, 0.0]


class TestFailureSemantics:
    def test_raising_rank_surfaces_spmd_error(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("deliberate failure")
            comm.recv(1, tag=0)  # never arrives; abort must wake this

        with pytest.raises(SpmdError) as ei:
            run_spmd(2, program, backend="process", timeout=10.0)
        assert 1 in ei.value.failures
        assert isinstance(ei.value.exceptions[1], ValueError)

    def test_dying_process_surfaces_spmd_error(self):
        """A rank that exits without reporting (os._exit) must not hang."""
        def program(comm):
            if comm.rank == 1:
                os._exit(3)
            comm.recv(1, tag=0)

        with pytest.raises(SpmdError) as ei:
            run_spmd(2, program, backend="process", timeout=10.0)
        assert isinstance(ei.value.exceptions[1], ChildProcessError)

    def test_fault_injection_rejected(self):
        """Injected faults rely on in-process delivery: thread only."""
        plan = FaultPlan(crashes=(CrashSpec(rank=0, at_time=0.0),))
        with pytest.raises(ValueError, match="thread"):
            run_spmd(2, lambda comm: None, backend="process", faults=plan)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_spmd(2, lambda comm: None, backend="fibers")


class TestObsMerge:
    def test_span_counts_match_thread_backend(self):
        from repro.obs.spans import tracing

        grid = LatLonGrid(**CONFIGS[1][1])
        counts = {}
        for backend in BACKENDS:
            with tracing() as tracer:
                core = DynamicalCore(
                    grid, algorithm="ca", nprocs=2,
                    params=PARAMS, backend=backend,
                )
                core.run(perturbed_rest_state(grid, amplitude_k=2.0), 2)
                counts[backend] = tracer.count("halo-exchange")
                ranks = {s.rank for s in tracer.spans
                         if s.name == "halo-exchange"}
                assert ranks == {0, 1}, backend
        # 2 exchanges/step x 2 steps x 2 ranks on both backends
        assert counts["thread"] == counts["process"] == 8


def _wedge_rank(comm):
    """Rank 1 wedges forever without touching the network."""
    import time

    if comm.rank == 1:
        time.sleep(3600.0)
    return comm.rank


def _stubborn_child():
    """Ignores SIGTERM: only SIGKILL can reap it."""
    import signal
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(3600.0)


class TestJoinWatchdog:
    def test_wedged_child_surfaces_as_spmd_error_within_deadline(self):
        """A child that hangs outside the communication layer (so the
        simulated network's deadlock timeout never sees it) must still
        surface as SpmdError once the hard join watchdog expires — a
        wedged child never hangs the launcher."""
        import time

        t0 = time.monotonic()
        with pytest.raises(SpmdError, match="still running"):
            run_spmd(
                2, _wedge_rank, backend="process",
                timeout=1.0, join_grace=1.0,
            )
        assert time.monotonic() - t0 < 30.0

    def test_reap_escalates_to_sigkill(self):
        import multiprocessing
        import time

        from repro.simmpi.launcher import reap_processes

        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(target=_stubborn_child, daemon=True)
        p.start()
        time.sleep(0.3)  # let the child install its SIGTERM handler
        killed = reap_processes(
            [p], join_timeout=0.1, term_timeout=0.5, kill_timeout=10.0
        )
        assert not p.is_alive()
        assert p.pid in killed
