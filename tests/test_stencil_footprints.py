"""Tables 1-3: measured operator footprints stay within the paper's.

The paper gives the *declared* dependency extents of the IAP scheme; our
discretization is not identical term-for-term (the exact IAP differences
are not published), so the contract enforced here is containment: no
operator may read farther than the paper's halo sizing assumes, which is
what keeps the communication model conservative.  The smoothing operator
is fully specified in the paper, so its footprint is matched exactly.
"""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.tendencies import TendencyEngine
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.footprint import probe_footprint
from repro.operators.geometry import WorkingGeometry
from repro.operators.smoothing import p1, p2
from repro.operators.stencil_meta import (
    ADAPTATION_RADII,
    ADVECTION_RADII,
    SMOOTHING_RADII,
    TABLE1_ADAPTATION,
    TABLE2_ADVECTION,
    TABLE3_SMOOTHING,
    render_table,
)
from repro.state.variables import ModelState


@pytest.fixture(scope="module")
def setup():
    grid = LatLonGrid(nx=24, ny=16, nz=8)
    sigma = SigmaLevels.uniform(grid.nz)
    geom = WorkingGeometry.build_global(grid, sigma, gy=3, gz=0)
    engine = TendencyEngine(geom, ModelParameters())
    rng = np.random.default_rng(42)
    base = ModelState.zeros(geom.shape3d)
    nz_w, ny_w, nx = geom.shape3d
    k, j, i = np.meshgrid(
        np.arange(nz_w), np.arange(ny_w), np.arange(nx), indexing="ij"
    )
    smooth = 0.05 * np.sin(0.4 * i + 0.3 * j + 0.5 * k)
    base.U[:] = 1.0 + smooth
    base.V[:] = 0.5 + 0.5 * smooth
    base.Phi[:] = 2.0 + smooth
    base.psa[:] = 100.0 * smooth[0]
    vd = engine.vertical(base)
    return engine, base, vd


def _probe(setup, in_field: str, out_field: str, evaluate) -> tuple:
    """Measured footprint of d(out)/d(in) for one composed operator."""
    engine, base, vd = setup
    shape = engine.geom.shape3d

    def op(arr):
        state = base.copy()
        if in_field == "psa":
            state.psa[...] = arr[0]
        else:
            getattr(state, in_field)[...] = arr
        out = evaluate(engine, state, vd)
        target = getattr(out, out_field)
        if target.ndim == 2:
            return np.broadcast_to(target, shape).copy()
        return target

    if in_field == "psa":
        nz_w = shape[0]

        def op2(arr):
            return op(arr)

        fp = probe_footprint(op2, shape, probe_point=(0, shape[1] // 2, shape[2] // 2))
        # 2-D input probed through level 0; z offsets are meaningless
        return fp.radii[0], fp.radii[1], 0
    fp = probe_footprint(op, shape)
    return fp.radii


def _eval_adaptation(engine, state, vd):
    from repro.operators.adaptation import adaptation_tendency

    return adaptation_tendency(state, vd, engine.geom, engine.params)


def _eval_advection(engine, state, vd):
    from repro.operators.advection import advection_tendency

    return advection_tendency(state, vd, engine.geom)


class TestDeclaredTables:
    def test_table_maxima(self):
        assert ADAPTATION_RADII == (3, 1, 1)
        assert ADVECTION_RADII == (3, 1, 1)
        assert SMOOTHING_RADII == (2, 2, 0)

    def test_render_contains_terms(self):
        text = render_table(TABLE1_ADAPTATION, "Table 1")
        assert "P_lambda_1" in text and "D_sa" in text
        assert "i-2" in text

    def test_all_tables_have_entries(self):
        assert len(TABLE1_ADAPTATION) == 11
        assert len(TABLE2_ADVECTION) == 9
        assert len(TABLE3_SMOOTHING) == 2


class TestAdaptationFootprints:
    @pytest.mark.parametrize("in_field", ["U", "V", "Phi", "psa"])
    @pytest.mark.parametrize("out_field", ["U", "V", "Phi"])
    def test_within_paper_extents(self, setup, in_field, out_field):
        rx, ry, rz = _probe(setup, in_field, out_field, _eval_adaptation)
        px, py, pz = ADAPTATION_RADII
        assert rx <= px, f"x radius {rx} exceeds Table 1 max {px}"
        assert ry <= py, f"y radius {ry} exceeds Table 1 max {py}"
        assert rz <= pz, f"z radius {rz} exceeds Table 1 max {pz}"

    def test_dsa_footprint(self, setup):
        rx, ry, _ = _probe(setup, "psa", "psa", _eval_adaptation)
        # Table 1's D_sa row: i, i+-1 / j, j+-1
        assert rx <= 1 and ry <= 1


class TestAdvectionFootprints:
    @pytest.mark.parametrize("field", ["U", "V", "Phi"])
    def test_self_advection_within_extents(self, setup, field):
        rx, ry, rz = _probe(setup, field, field, _eval_advection)
        px, py, pz = ADVECTION_RADII
        assert rx <= px and ry <= py and rz <= pz

    @pytest.mark.parametrize("field", ["U", "V"])
    def test_wind_influence_on_tracer(self, setup, field):
        rx, ry, rz = _probe(setup, field, "Phi", _eval_advection)
        px, py, pz = ADVECTION_RADII
        assert rx <= px and ry <= py and rz <= pz


class TestSmoothingFootprints:
    def test_p1_matches_table3_exactly(self):
        shape = (4, 10, 12)
        fp = probe_footprint(lambda a: p1(a, 0.1), shape)
        entry = TABLE3_SMOOTHING[0]
        assert set(fp.x) == set(entry.x)
        assert set(fp.y) == set(entry.y)
        assert set(fp.z) == set(entry.z)

    def test_p2_matches_table3_exactly(self):
        shape = (4, 12, 12)
        fp = probe_footprint(lambda a: p2(a, 0.1), shape)
        entry = TABLE3_SMOOTHING[1]
        assert set(fp.x) == set(entry.x)
        assert set(fp.y) == set(entry.y)
        assert set(fp.z) == set(entry.z)
