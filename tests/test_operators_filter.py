"""The Fourier polar filter F."""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.grid.sigma import SigmaLevels
from repro.operators.filter import (
    PolarFilter,
    apply_filter_rows,
    clear_plan_cache,
    damping_factors,
    filter_plan,
    plan_cache_stats,
)
from repro.operators.geometry import WorkingGeometry
from repro.state.variables import ModelState


@pytest.fixture
def geom(small_grid):
    sigma = SigmaLevels.uniform(small_grid.nz)
    return WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)


@pytest.fixture
def pfilter(geom):
    return PolarFilter(geom, ModelParameters())


class TestDampingFactors:
    def test_mask_selects_polar_rows_only(self, small_grid):
        import math

        sin_rows = np.sin(small_grid.theta_c)
        mask, _ = damping_factors(sin_rows, small_grid.nx, math.radians(70.0))
        lat = np.abs(90.0 - np.degrees(small_grid.theta_c))
        assert np.array_equal(mask, lat > 70.0)

    def test_zonal_mean_never_damped(self, small_grid):
        import math

        sin_rows = np.sin(small_grid.theta_c)
        _, factors = damping_factors(sin_rows, small_grid.nx, math.radians(70.0))
        assert np.all(factors[:, 0] == 1.0)

    def test_factors_decrease_with_wavenumber(self, small_grid):
        import math

        sin_rows = np.sin(small_grid.theta_c)
        _, factors = damping_factors(sin_rows, small_grid.nx, math.radians(70.0))
        for row in factors:
            assert np.all(np.diff(row[1:]) <= 1e-15)

    def test_rows_nearer_pole_damped_harder(self, small_grid):
        import math

        sin_rows = np.sin(small_grid.theta_c)
        mask, factors = damping_factors(
            sin_rows, small_grid.nx, math.radians(70.0)
        )
        # first masked row is closest to the pole
        m_hi = small_grid.nx // 2
        assert factors[0, m_hi] <= factors[1, m_hi]


class TestApplication:
    def test_high_wavenumber_removed_at_pole(self, geom, pfilter):
        nz_w, ny_w, nx = geom.shape3d
        arr = np.zeros((nz_w, ny_w, nx))
        m_high = nx // 2 - 1
        i = np.arange(nx)
        arr[:, :, :] = np.cos(2 * np.pi * m_high * i / nx)
        pole_row = geom.gy  # first interior row (closest to the north pole)
        before = arr[0, pole_row].copy()
        pfilter.apply(arr, rows="c")
        after = arr[0, pole_row]
        assert np.abs(after).max() < 0.1 * np.abs(before).max()

    def test_equatorial_rows_untouched(self, geom, pfilter, rng):
        nz_w, ny_w, nx = geom.shape3d
        arr = rng.standard_normal((nz_w, ny_w, nx))
        eq = ny_w // 2
        before = arr[:, eq].copy()
        pfilter.apply(arr, rows="c")
        assert np.array_equal(arr[:, eq], before)

    def test_zonal_mean_preserved_everywhere(self, geom, pfilter, rng):
        nz_w, ny_w, nx = geom.shape3d
        arr = rng.standard_normal((nz_w, ny_w, nx))
        mean_before = arr.mean(axis=-1).copy()
        pfilter.apply(arr, rows="c")
        assert np.allclose(arr.mean(axis=-1), mean_before, atol=1e-12)

    def test_apply_state_touches_all_fields(self, geom, pfilter, rng):
        state = ModelState.zeros(geom.shape3d)
        nx = geom.grid.nx
        i = np.arange(nx)
        wave = np.cos(2 * np.pi * (nx // 2 - 1) * i / nx)
        for arr in (state.U, state.V, state.Phi):
            arr[:, :, :] = wave
        state.psa[:, :] = wave
        pfilter.apply_state(state)
        pole = geom.gy
        for arr in (state.U, state.Phi, state.psa):
            assert np.abs(arr[..., pole, :]).max() < 0.1

    def test_idempotent_on_filtered_signal(self, geom, pfilter, rng):
        """Filtering twice with a hard-ish profile changes little the
        second time for already-damped high modes (soft idempotence)."""
        nz_w, ny_w, nx = geom.shape3d
        arr = rng.standard_normal((nz_w, ny_w, nx))
        pfilter.apply(arr, rows="c")
        once = arr.copy()
        pfilter.apply(arr, rows="c")
        # second pass damps by at most the same factors: differences are
        # bounded by the first-pass residual
        assert np.abs(arr - once).max() <= np.abs(once).max()

    def test_rejects_split_x_geometry(self, small_grid):
        from repro.grid.decomposition import BlockExtent

        sigma = SigmaLevels.uniform(small_grid.nz)
        ext = BlockExtent(0, small_grid.nx // 2, 0, small_grid.ny, 0, small_grid.nz)
        geom = WorkingGeometry.build(small_grid, sigma, ext, gy=2, gz=0, gx=2)
        with pytest.raises(ValueError):
            PolarFilter(geom, ModelParameters())

    def test_apply_filter_rows_matches_manual_fft(self, geom, rng):
        nz_w, ny_w, nx = geom.shape3d
        arr = rng.standard_normal((2, ny_w, nx))
        mask = np.zeros(ny_w, dtype=bool)
        mask[1] = True
        factors = np.full((1, nx // 2 + 1), 0.5)
        factors[0, 0] = 1.0
        expected = np.fft.irfft(
            np.fft.rfft(arr[:, 1, :], axis=-1) * factors[0], n=nx, axis=-1
        )
        apply_filter_rows(arr, mask, factors)
        assert np.allclose(arr[:, 1, :], expected)


class TestPlanCache:
    def test_hit_returns_same_readonly_arrays(self, geom):
        clear_plan_cache()
        args = (geom.sin_c, geom.grid.nx, ModelParameters().filter_latitude)
        mask1, fac1 = filter_plan(*args)
        mask2, fac2 = filter_plan(*args)
        assert mask1 is mask2 and fac1 is fac2
        assert not fac1.flags.writeable and not mask1.flags.writeable
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_matches_uncached_and_keys_on_inputs(self, geom):
        clear_plan_cache()
        lat = ModelParameters().filter_latitude
        mask, fac = filter_plan(geom.sin_c, geom.grid.nx, lat)
        ref_mask, ref_fac = damping_factors(geom.sin_c, geom.grid.nx, lat)
        assert np.array_equal(mask, ref_mask)
        assert np.array_equal(fac, ref_fac)
        # different profile -> distinct entry, not a stale hit
        filter_plan(geom.sin_c, geom.grid.nx, lat, "sharp")
        assert plan_cache_stats()["size"] == 2

    def test_polar_filters_share_plans(self, geom):
        clear_plan_cache()
        a = PolarFilter(geom, ModelParameters())
        b = PolarFilter(geom, ModelParameters())
        assert a.factors_c is b.factors_c
        assert a.factors_v is b.factors_v
        assert plan_cache_stats()["hits"] == 2
