"""Filter damping profiles and their use by the cores."""
import math

import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.grid.latlon import LatLonGrid
from repro.operators.filter import FILTER_PROFILES, damping_factors


@pytest.fixture
def sin_rows():
    grid = LatLonGrid(nx=32, ny=24, nz=4)
    return np.sin(grid.theta_c), grid.nx


class TestProfiles:
    @pytest.mark.parametrize("profile", FILTER_PROFILES)
    def test_all_profiles_valid(self, sin_rows, profile):
        rows, nx = sin_rows
        mask, factors = damping_factors(
            rows, nx, math.radians(70.0), profile
        )
        assert np.all(factors >= 0.0) and np.all(factors <= 1.0)
        assert np.all(factors[:, 0] == 1.0)

    def test_sharp_is_binary(self, sin_rows):
        rows, nx = sin_rows
        _, factors = damping_factors(rows, nx, math.radians(70.0), "sharp")
        assert set(np.unique(factors)) <= {0.0, 1.0}

    def test_sharp_strongest_at_high_m(self, sin_rows):
        rows, nx = sin_rows
        _, quad = damping_factors(rows, nx, math.radians(70.0), "quadratic")
        _, sharp = damping_factors(rows, nx, math.radians(70.0), "sharp")
        m_hi = nx // 2
        assert np.all(sharp[:, m_hi] <= quad[:, m_hi])

    def test_exponential_smoothly_decreasing(self, sin_rows):
        rows, nx = sin_rows
        _, exp = damping_factors(
            rows, nx, math.radians(70.0), "exponential"
        )
        for row in exp:
            assert np.all(np.diff(row[1:]) <= 1e-12)

    def test_unknown_profile_rejected(self, sin_rows):
        rows, nx = sin_rows
        with pytest.raises(ValueError):
            damping_factors(rows, nx, math.radians(70.0), "boxcar")

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ModelParameters(filter_profile="boxcar")


class TestCoreIntegration:
    @pytest.mark.parametrize("profile", FILTER_PROFILES)
    def test_serial_core_runs_with_profile(self, profile):
        from repro.core.integrator import SerialCore
        from repro.physics import perturbed_rest_state

        grid = LatLonGrid(nx=32, ny=16, nz=6)
        params = ModelParameters(
            dt_adaptation=60.0, dt_advection=180.0, filter_profile=profile
        )
        core = SerialCore(grid, params=params)
        out = core.run(perturbed_rest_state(grid, amplitude_k=2.0), 3)
        assert out.isfinite()

    def test_profiles_differ_in_polar_damping(self):
        from repro.core.integrator import SerialCore
        from repro.physics import perturbed_rest_state

        grid = LatLonGrid(nx=32, ny=16, nz=6)
        outs = {}
        for profile in ("quadratic", "sharp"):
            params = ModelParameters(
                dt_adaptation=60.0, dt_advection=180.0,
                filter_profile=profile,
            )
            core = SerialCore(grid, params=params)
            outs[profile] = core.run(
                perturbed_rest_state(grid, amplitude_k=2.0,
                                     center_lat_deg=80.0), 3
            )
        assert outs["quadratic"].max_difference(outs["sharp"]) > 0.0
