"""Instrumented simulated-MPI counters vs the closed-form event counts.

This is the bridge that justifies projecting to paper scale: the
per-step communication *relationships* the projection model assumes
(exchange frequency 13 vs 2, collective frequency 3M vs 2M, message
ratios) are measured on the executable cores here.
"""
import pytest

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import run_spmd


@pytest.fixture(scope="module")
def measured():
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=60.0, m_iterations=1)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
    nsteps = 3
    out = {}
    for name, program in (
        ("original", original_rank_program), ("ca", ca_rank_program)
    ):
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=nsteps,
        )
        out[name] = run_spmd(decomp.nranks, program, cfg, state0)
    return params, nsteps, decomp, out


class TestFrequencies:
    def test_exchange_frequency_13_vs_2(self, measured):
        params, nsteps, decomp, out = measured
        M = params.m_iterations
        per_step_orig = (out["original"].results[0].exchanges - 1) / nsteps
        per_step_ca = out["ca"].results[0].exchanges / nsteps
        assert per_step_orig == 3 * M + 4
        assert per_step_ca == 2

    def test_collective_frequency_3m_vs_2m(self, measured):
        params, nsteps, decomp, out = measured
        M = params.m_iterations
        assert out["original"].results[0].c_calls == 3 * M * nsteps
        assert out["ca"].results[0].c_calls == 2 * M * nsteps + 1

    def test_collective_volume_reduced_about_one_third(self, measured):
        """'about 30% of the communication volumes are reduced' (Sec 5.2).

        CA collectives move wider (halo-extended) rows, so the byte ratio
        exceeds the pure 2/3 frequency ratio; the op-count ratio is exact.
        """
        params, nsteps, decomp, out = measured
        ops_or = max(s.collective_ops for s in out["original"].stats)
        ops_ca = max(s.collective_ops for s in out["ca"].stats)
        # strip the cold-start call before comparing frequencies
        assert (ops_ca - 1) / ops_or == pytest.approx(2.0 / 3.0, abs=0.01)

    def test_message_count_ratio(self, measured):
        """Per step the original sends (3M+4) x neighbours x fields
        messages; CA sends 2 x neighbours x fields plus the bundle."""
        params, nsteps, decomp, out = measured
        msgs_or = sum(s.p2p_messages_sent for s in out["original"].stats)
        msgs_ca = sum(s.p2p_messages_sent for s in out["ca"].stats)
        assert msgs_ca < 0.5 * msgs_or


class TestLatencyCost:
    def test_synchronization_ordering(self, measured):
        """S_CA < S_YZ: fewer synchronizing events per step (Sec. 5.3)."""
        _, nsteps, _, out = measured
        sync_or = max(s.synchronizations for s in out["original"].stats)
        sync_ca = max(s.synchronizations for s in out["ca"].stats)
        assert sync_ca < sync_or


class TestTimeBreakdown:
    def test_ca_stencil_time_smaller(self, measured):
        _, _, _, out = measured
        t_or = max(
            s.tagged_time.get("stencil_comm", 0.0)
            for s in out["original"].stats
        )
        t_ca = max(
            s.tagged_time.get("stencil_comm", 0.0) for s in out["ca"].stats
        )
        assert t_ca < t_or

    def test_ca_collective_time_per_op_comparable(self, measured):
        """At toy scale CA's halo-widened collective payloads offset the
        frequency win (time per op is higher by design — wide rows); the
        per-operation time must stay within the volume-growth bound, so
        that at paper scale (where the sync overhead dominates, see
        repro.perf.model) the 2M/3M frequency ratio wins."""
        _, _, _, out = measured
        ops_or = max(s.collective_ops for s in out["original"].stats)
        ops_ca = max(s.collective_ops for s in out["ca"].stats)
        t_or = max(s.collective_time for s in out["original"].stats) / ops_or
        t_ca = max(s.collective_time for s in out["ca"].stats) / ops_ca
        assert t_ca < 3.0 * t_or
