"""Job identity, deterministic backoff, and the integrity-checked cache."""
import pytest

from repro.serve.cache import CORRUPT, HIT, MISS, ResultCache
from repro.serve.job import (
    JobSpec,
    backoff_delay,
    job_key,
    seeded_unit,
    state_digest,
)
from repro.state.io import checksum_path


class TestJobIdentity:
    def test_key_is_deterministic(self):
        a = JobSpec(name="x", nsteps=3)
        b = JobSpec(name="x", nsteps=3)
        assert job_key(a) == job_key(b)

    def test_key_separates_configs_and_tenants(self):
        base = JobSpec(name="x", nsteps=3)
        assert job_key(base) != job_key(JobSpec(name="x", nsteps=4))
        assert job_key(base) != job_key(JobSpec(name="y", nsteps=3))
        assert job_key(base) != job_key(
            JobSpec(name="x", nsteps=3, chaos={"kind": "crash"})
        )

    def test_physics_key_ignores_name_and_chaos(self):
        a = JobSpec(name="x", nsteps=3)
        b = JobSpec(name="y", nsteps=3, chaos={"kind": "crash"})
        assert a.physics_key() == b.physics_key()
        assert a.physics_key() != JobSpec(nsteps=4).physics_key()

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            JobSpec(nsteps=0)
        with pytest.raises(ValueError):
            JobSpec(checkpoint_interval=0)
        with pytest.raises(ValueError):
            JobSpec(chaos={"kind": "sabotage"})

    def test_state_digest_discriminates(self, rng):
        from repro.state.variables import ModelState

        s1 = ModelState.random((2, 4, 6), rng)
        s2 = s1.copy()
        assert state_digest(s1) == state_digest(s2)
        s2.U[0, 0, 0] += 1e-12
        assert state_digest(s1) != state_digest(s2)


class TestBackoff:
    def test_seeded_unit_deterministic_and_bounded(self):
        draws = [seeded_unit(7, "k", a) for a in range(1, 50)]
        assert draws == [seeded_unit(7, "k", a) for a in range(1, 50)]
        assert all(0.0 <= u < 1.0 for u in draws)
        # decorrelated across seeds/keys/attempts
        assert seeded_unit(7, "k", 1) != seeded_unit(8, "k", 1)
        assert seeded_unit(7, "k", 1) != seeded_unit(7, "j", 1)

    def test_backoff_grows_caps_and_jitters(self):
        d1 = backoff_delay(0.1, 2.0, 10.0, 0, "k", 1)
        d2 = backoff_delay(0.1, 2.0, 10.0, 0, "k", 2)
        assert 0.05 <= d1 < 0.15
        assert 0.1 <= d2 < 0.3
        capped = backoff_delay(0.1, 2.0, 0.2, 0, "k", 30)
        assert capped < 0.3
        assert backoff_delay(0.0, 2.0, 1.0, 0, "k", 1) == 0.0

    def test_backoff_reproducible_across_runs(self):
        a = [backoff_delay(0.1, 2.0, 5.0, 3, "key", n) for n in (1, 2, 3)]
        b = [backoff_delay(0.1, 2.0, 5.0, 3, "key", n) for n in (1, 2, 3)]
        assert a == b


class TestResultCache:
    def test_put_probe_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.probe("k" * 8) == (None, MISS)
        path = cache.put("k" * 8, b"payload-bytes")
        assert checksum_path(path).exists()
        got, verdict = cache.probe("k" * 8)
        assert verdict == HIT and got.read_bytes() == b"payload-bytes"
        assert len(cache) == 1

    def test_corruption_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("deadbeef", b"x" * 64)
        cache.corrupt_entry_for_test("deadbeef", offset=4)
        got, verdict = cache.probe("deadbeef")
        assert got is None and verdict == CORRUPT
        # the bad entry moved aside: next probe is a plain miss
        assert cache.probe("deadbeef") == (None, MISS)
        assert len(cache.quarantined()) >= 1
        assert cache.get("deadbeef") is None

    def test_missing_sidecar_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("cafe", b"y" * 32)
        checksum_path(path).unlink()
        _, verdict = cache.probe("cafe")
        assert verdict == CORRUPT

    def test_overwrite_same_key_is_safe(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", b"same-bytes")
        path = cache.put("aa", b"same-bytes")
        assert cache.probe("aa") == (path, HIT)
        assert len(cache) == 1
