"""Block decompositions: extents, neighbours, gather/scatter."""
import numpy as np
import pytest

from repro.grid.decomposition import (
    Decomposition,
    balanced_partition,
    best_2d_factorization,
    xy_decomposition,
    yz_decomposition,
)


class TestBalancedPartition:
    def test_covers_range(self):
        bounds = balanced_partition(17, 5)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 17
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0

    def test_sizes_differ_by_at_most_one(self):
        sizes = [b - a for a, b in balanced_partition(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_overdecomposition(self):
        with pytest.raises(ValueError):
            balanced_partition(3, 5)


class TestDecomposition:
    def test_kind_detection(self):
        assert Decomposition(16, 8, 4, 1, 1, 1).kind == "serial"
        assert Decomposition(16, 8, 4, 2, 2, 1).kind == "xy"
        assert Decomposition(16, 8, 4, 1, 2, 2).kind == "yz"
        assert Decomposition(16, 8, 4, 1, 4, 1).kind == "yz"
        assert Decomposition(16, 8, 4, 2, 2, 2).kind == "3d"

    def test_coords_roundtrip(self):
        d = Decomposition(16, 8, 4, 2, 2, 2)
        for r in range(d.nranks):
            assert d.rank_of(*d.coords(r)) == r

    def test_extents_tile_the_mesh(self):
        d = Decomposition(17, 9, 5, 2, 3, 2)
        cover = np.zeros((5, 9, 17), dtype=int)
        for ext in d.extents():
            cover[ext.slices3d()] += 1
        assert np.all(cover == 1)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            Decomposition(16, 8, 4, 1, 9, 1)

    def test_neighbour_periodic_x(self):
        d = Decomposition(16, 8, 4, 4, 2, 1)
        r = d.rank_of(0, 0, 0)
        assert d.neighbour(r, -1, 0, 0) == d.rank_of(3, 0, 0)

    def test_neighbour_bounded_y(self):
        d = Decomposition(16, 8, 4, 1, 4, 1)
        top = d.rank_of(0, 0, 0)
        assert d.neighbour(top, 0, -1, 0) is None
        bot = d.rank_of(0, 3, 0)
        assert d.neighbour(bot, 0, 1, 0) is None

    def test_plane_neighbours_interior_yz(self):
        d = Decomposition(16, 12, 9, 1, 3, 3)
        centre = d.rank_of(0, 1, 1)
        nbs = d.plane_neighbours(centre)
        assert len(nbs) == 8
        assert all(nb != centre for nb in nbs.values())

    def test_plane_neighbours_corner_yz(self):
        d = Decomposition(16, 12, 9, 1, 3, 3)
        corner = d.rank_of(0, 0, 0)
        assert len(d.plane_neighbours(corner)) == 3

    def test_ranks_along_axes(self):
        d = Decomposition(16, 8, 4, 2, 2, 2)
        r = d.rank_of(1, 0, 1)
        assert d.ranks_along("z", r) == [d.rank_of(1, 0, 0), d.rank_of(1, 0, 1)]
        assert len(d.ranks_along("x", r)) == 2
        with pytest.raises(ValueError):
            d.ranks_along("w", r)


class TestGatherScatter:
    def test_roundtrip_3d(self, rng):
        d = Decomposition(16, 9, 5, 2, 3, 1)
        g = rng.standard_normal((5, 9, 16))
        blocks = [d.scatter(g, r) for r in range(d.nranks)]
        assert np.array_equal(d.gather(blocks), g)

    def test_roundtrip_2d(self, rng):
        d = Decomposition(16, 9, 5, 1, 3, 1)
        g = rng.standard_normal((9, 16))
        blocks = [d.scatter(g, r) for r in range(d.nranks)]
        assert np.array_equal(d.gather(blocks), g)

    def test_gather_rejects_wrong_count(self):
        d = Decomposition(16, 8, 4, 2, 1, 1)
        with pytest.raises(ValueError):
            d.gather([np.zeros((4, 8, 8))])

    def test_gather_rejects_wrong_shape(self):
        d = Decomposition(16, 8, 4, 2, 1, 1)
        with pytest.raises(ValueError):
            d.gather([np.zeros((4, 8, 9)), np.zeros((4, 8, 8))])


class TestFactorization:
    def test_exact_product(self):
        for p in (2, 4, 8, 16, 64):
            a, b = best_2d_factorization(p, 360, 30)
            assert a * b == p

    def test_respects_limits(self):
        a, b = best_2d_factorization(64, 360, 30)
        assert a <= 180 and b <= 15

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            best_2d_factorization(64, 4, 4)

    def test_yz_has_px_one(self):
        d = yz_decomposition(720, 360, 30, 64)
        assert d.px == 1 and d.kind == "yz"

    def test_xy_has_pz_one(self):
        d = xy_decomposition(720, 360, 30, 64)
        assert d.pz == 1 and d.kind == "xy"

    def test_paper_scale_1024(self):
        d = yz_decomposition(720, 360, 30, 1024)
        assert d.nranks == 1024
        assert d.py <= 180 and d.pz <= 15
