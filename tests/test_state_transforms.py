"""The IAP variable transform (Eq. 1)."""
import numpy as np
import pytest

from repro import constants
from repro.grid.sigma import SigmaLevels
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import (
    p_es_from_ps,
    p_factor,
    physical_to_transformed,
    transformed_to_physical,
)


class TestPFactor:
    def test_reference_value(self):
        P = p_factor(np.array(constants.P_REFERENCE))
        expected = np.sqrt(
            (constants.P_REFERENCE - constants.P_TOP) / constants.P_REFERENCE
        )
        assert float(P) == pytest.approx(float(expected))

    def test_rejects_subtop_pressure(self):
        with pytest.raises(ValueError):
            p_factor(np.array(constants.P_TOP / 2))

    def test_pes(self):
        assert float(p_es_from_ps(np.array(1.0e5))) == pytest.approx(
            1.0e5 - constants.P_TOP
        )


class TestRoundTrip:
    def test_transform_inverse(self, rng):
        nz, ny, nx = 5, 8, 12
        sigma = SigmaLevels.uniform(nz)
        ref = StandardAtmosphere()
        u = rng.standard_normal((nz, ny, nx)) * 10
        v = rng.standard_normal((nz, ny, nx)) * 10
        t = 250.0 + rng.standard_normal((nz, ny, nx)) * 5
        ps = 1.0e5 + rng.standard_normal((ny, nx)) * 500
        U, V, Phi, psa = physical_to_transformed(u, v, t, ps, sigma.mid, ref)
        u2, v2, t2, ps2 = transformed_to_physical(U, V, Phi, psa, sigma.mid, ref)
        assert np.allclose(u2, u, atol=1e-10)
        assert np.allclose(v2, v, atol=1e-10)
        assert np.allclose(t2, t, atol=1e-9)
        assert np.allclose(ps2, ps, atol=1e-8)

    def test_standard_state_maps_to_zero(self):
        """T = T~(local p), p_s = p~_s must give Phi = 0, p'_sa = 0."""
        nz, ny, nx = 4, 6, 8
        sigma = SigmaLevels.uniform(nz)
        ref = StandardAtmosphere()
        ps = np.full((ny, nx), ref.p_surface)
        t = np.broadcast_to(
            ref.temperature_at_sigma(sigma.mid, ps=ps), (nz, ny, nx)
        ).copy()
        U, V, Phi, psa = physical_to_transformed(
            np.zeros((nz, ny, nx)), np.zeros((nz, ny, nx)), t, ps, sigma.mid, ref
        )
        assert np.allclose(Phi, 0.0, atol=1e-12)
        assert np.allclose(psa, 0.0)

    def test_wind_scaling(self):
        """U = P u exactly."""
        nz, ny, nx = 2, 4, 6
        sigma = SigmaLevels.uniform(nz)
        ref = StandardAtmosphere()
        u = np.ones((nz, ny, nx)) * 7.0
        ps = np.full((ny, nx), 1.0e5)
        t = np.broadcast_to(
            ref.temperature_at_sigma(sigma.mid, ps=ps), (nz, ny, nx)
        ).copy()
        U, *_ = physical_to_transformed(
            u, np.zeros_like(u), t, ps, sigma.mid, ref
        )
        assert np.allclose(U, 7.0 * p_factor(ps)[None])
