"""Property-based tests of the fused-kernel stage algebra.

Two claims, checked with hypothesis-drawn fields:

1. *Stage algebra*: fusing the atomic smoothing stages and applying them
   in one pass equals applying the stages sequentially (the unfused
   schedule) — to rounding, since the sequential schedule reassociates
   across stages.
2. *Exactness*: every fused backend equals the reference operator **bit
   for bit** — the stronger guarantee the kernel tier ships with.

Both are swept over every stencil-plan shape registered by real fused
runs (``registered_plans()``), so the shapes the model actually uses are
always among the tested ones.
"""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.core.workspace import Workspace
from repro.grid.latlon import LatLonGrid
from repro.kernels import available_backends, kernel_set, registered_plans
from repro.kernels.numba_backend import smooth_full_numba
from repro.kernels.stages import (
    apply_stages_sequential,
    smooth_field_fused_numpy,
    smoother_stages,
)
from repro.operators.smoothing import FieldSmoother
from repro.physics import balanced_random_state

betas = st.floats(0.0, 1.0, allow_nan=False)

fields = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 3), st.integers(5, 12), st.integers(6, 12)),
    elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
)


def _seed_plans() -> list:
    """Run a short fused step on every backend so plans are registered."""
    grid = LatLonGrid(nx=16, ny=8, nz=4)
    s0 = balanced_random_state(grid, np.random.default_rng(20180813))
    for backend in available_backends():
        core = SerialCore(grid, kernel_tier="fused", kernel_backend=backend)
        core.step(core.pad(s0))
    plans = registered_plans()
    assert plans
    return plans


_PLANS = _seed_plans()
_STENCIL_SHAPES = sorted(
    {p.shape for p in _PLANS if p.op == "smoothing" and len(p.shape) == 3}
)


@settings(max_examples=25, deadline=None)
@given(bx=betas, by=betas, cross=st.booleans(), data=st.data())
def test_fused_equals_sequential_stages_on_plan_shapes(bx, by, cross, data):
    """Fuse-then-apply == apply-stages-sequentially (to rounding)."""
    shape = data.draw(st.sampled_from(_STENCIL_SHAPES))
    a = data.draw(
        hnp.arrays(
            np.float64, shape,
            elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
        )
    )
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    out = np.empty_like(a)
    smooth_field_fused_numpy(sm, a, out, Workspace())
    seq = apply_stages_sequential(sm, a)
    assert np.allclose(out, seq, rtol=1e-12, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(a=fields, bx=betas, by=betas, cross=st.booleans())
def test_fused_numpy_bit_identical_to_reference(a, bx, by, cross):
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    ref = sm.full_into(a, np.empty_like(a), Workspace())
    out = np.empty_like(a)
    smooth_field_fused_numpy(sm, a, out, Workspace())
    assert np.array_equal(ref, out)
    assert np.array_equal(np.signbit(ref), np.signbit(out))


@settings(max_examples=25, deadline=None)
@given(a=fields, bx=betas, by=betas, cross=st.booleans())
def test_loop_backend_bit_identical_to_reference(a, bx, by, cross):
    """The numba loop body (JITted or not: same code) matches bitwise."""
    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    ref = sm.full_into(a, np.empty_like(a), Workspace())
    out = np.empty_like(a)
    smooth_full_numba(a, out, np.empty_like(a), bx, by, cross)
    assert np.array_equal(ref, out)
    assert np.array_equal(np.signbit(ref), np.signbit(out))


@pytest.mark.skipif(
    "c" not in available_backends(), reason="no C compiler on this host"
)
@settings(max_examples=15, deadline=None)
@given(a=fields, bx=betas, by=betas, cross=st.booleans())
def test_c_backend_bit_identical_to_reference(a, bx, by, cross):
    from repro.kernels.cbackend import load_library, smooth_full_c

    sm = FieldSmoother(beta_x=bx, beta_y=by, cross=cross)
    ref = sm.full_into(a, np.empty_like(a), Workspace())
    out = np.empty_like(a)
    smooth_full_c(load_library(), a, out, np.empty_like(a), bx, by, cross)
    assert np.array_equal(ref, out)
    assert np.array_equal(np.signbit(ref), np.signbit(out))


def test_every_registered_plan_declares_its_stages():
    x_only = smoother_stages(FieldSmoother(beta_x=0.1, beta_y=0.0, cross=False))
    for plan in _PLANS:
        assert plan.stages, f"plan {plan.op}@{plan.shape} lists no stages"
        if plan.op == "smoothing":
            # every smoother fuses at least the x-direction stages
            assert plan.stages[: len(x_only)] == x_only
