"""Every example script must run end to end (small arguments)."""
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["--quick"]),
    ("held_suarez_climate.py", ["--quick"]),
    ("decomposition_study.py", ["--quick"]),
    ("ca_vs_original.py", ["--quick"]),
    ("lamb_wave.py", ["--quick"]),
    ("timeline_trace.py", ["--quick"]),
    ("approximation_error.py", ["--quick"]),
    ("fault_tolerance.py", ["--quick"]),
    ("serve_demo.py", ["--quick"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_covered():
    """Every script in examples/ has a smoke case here."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {c[0] for c in CASES}
