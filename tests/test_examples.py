"""Every example script must run end to end (small arguments)."""
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["--steps", "3", "--nx", "32", "--ny", "16", "--nz", "6"]),
    ("held_suarez_climate.py", ["--days", "0.05", "--nx", "32", "--ny", "16",
                                "--nz", "6", "--spinup-days", "0.02"]),
    ("decomposition_study.py", ["--nprocs", "4", "--steps", "1"]),
    ("ca_vs_original.py", ["--steps", "2", "--nprocs", "4"]),
    ("lamb_wave.py", ["--steps", "8"]),
    ("timeline_trace.py", ["--steps", "1", "--nprocs", "4"]),
    ("approximation_error.py", ["--steps", "1"]),
    ("fault_tolerance.py", ["--steps", "3", "--nprocs", "4"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_covered():
    """Every script in examples/ has a smoke case here."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {c[0] for c in CASES}
