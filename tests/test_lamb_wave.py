"""Physical validation: the external (Lamb) wave.

The barotropic reference pressure force gives the surface-pressure mode a
restoring spring with wave speed ``sqrt(R T~_s)`` (see
repro.operators.adaptation).  This test excites a single zonal mode at
the equator and measures its oscillation frequency against the analytic
dispersion relation — an end-to-end check of the pressure-gradient /
divergence coupling through the adaptation process.
"""
import numpy as np
import pytest

from repro import constants
from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.physics import rest_state
from repro.state.standard_atmosphere import StandardAtmosphere


@pytest.fixture(scope="module")
def oscillation():
    """Time series of one psa zonal mode under adaptation-only dynamics."""
    grid = LatLonGrid(nx=32, ny=16, nz=6)
    dt = 200.0
    params = ModelParameters(
        dt_adaptation=dt, dt_advection=3 * dt, m_iterations=3,
        smoothing_beta=0.0, smoothing_beta_y_uv=0.0,
    )
    core = SerialCore(grid, params=params)
    state = rest_state(grid)
    m = 3
    # excite mode m on a band around the equator (same sign everywhere in y
    # to keep the response close to a pure zonal Lamb wave)
    band = np.exp(-((np.arange(grid.ny) - (grid.ny - 1) / 2) / 3.0) ** 2)
    state.psa[:] = 50.0 * band[:, None] * np.cos(m * grid.lon)[None, :]
    w = core.pad(state)
    eq = grid.ny // 2
    amps = []
    nsteps = 60
    for _ in range(nsteps):
        w = core.step(w)
        s = core.strip(w)
        spec = np.fft.rfft(s.psa[eq])
        amps.append(spec[m].real / grid.nx)
    return grid, dt * 3, m, np.array(amps)


class TestLambWave:
    def test_mode_oscillates(self, oscillation):
        grid, dt_step, m, amps = oscillation
        assert amps.min() < 0 < amps.max()  # standing oscillation

    def test_frequency_matches_lamb_speed(self, oscillation):
        """omega = c k with c = sqrt(R T~_s), within discretization error."""
        grid, dt_step, m, amps = oscillation
        # first zero crossing: quarter period
        sign_change = np.where(np.sign(amps[:-1]) != np.sign(amps[1:]))[0]
        assert sign_change.size > 0, "no oscillation detected"
        i0 = sign_change[0]
        # linear interpolation of the crossing time
        frac = amps[i0] / (amps[i0] - amps[i0 + 1])
        t_quarter = (i0 + frac + 1) * dt_step
        omega = 2 * np.pi / (4 * t_quarter)
        k = m / (grid.radius * np.sin(grid.theta_c[grid.ny // 2]))
        c_measured = omega / k
        c_expected = np.sqrt(
            constants.R_DRY * StandardAtmosphere().t_surface_ref
        )
        assert c_measured == pytest.approx(c_expected, rel=0.25)

    def test_amplitude_not_growing(self, oscillation):
        """Adaptation-only dynamics must not amplify the wave."""
        grid, dt_step, m, amps = oscillation
        early = np.abs(amps[:10]).max()
        late = np.abs(amps[-10:]).max()
        assert late < 1.5 * early
