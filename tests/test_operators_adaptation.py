"""The adaptation operator A-hat (+ its C ingredients)."""
import numpy as np
import pytest

from repro import constants
from repro.constants import ModelParameters
from repro.core.tendencies import TendencyEngine
from repro.grid.sigma import SigmaLevels
from repro.operators.adaptation import surface_dissipation
from repro.operators.geometry import WorkingGeometry
from repro.physics import balanced_random_state, rest_state
from repro.state.variables import ModelState


@pytest.fixture
def engine(small_grid):
    sigma = SigmaLevels.uniform(small_grid.nz)
    geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
    return TendencyEngine(geom, ModelParameters())


def pad(engine, state):
    w = ModelState.zeros(engine.geom.shape3d)
    gy = engine.geom.gy
    for name, arr in state.fields().items():
        getattr(w, name)[..., gy:-gy, :] = arr
    engine.fill_physical_ghosts(w)
    return w


def interior(engine, arr):
    gy = engine.geom.gy
    return arr[..., gy:-gy, :]


class TestRestState:
    def test_rest_is_steady(self, small_grid, engine):
        """The zero (standard-stratification) state has zero tendency."""
        w = pad(engine, rest_state(small_grid))
        vd = engine.vertical(w)
        tend = engine.adaptation(w, vd)
        assert interior(engine, tend.U) == pytest.approx(0.0, abs=1e-12)
        assert interior(engine, tend.V) == pytest.approx(0.0, abs=1e-12)
        assert interior(engine, tend.Phi) == pytest.approx(0.0, abs=1e-12)
        assert interior(engine, tend.psa) == pytest.approx(0.0, abs=1e-12)


class TestBarotropicForce:
    def test_high_pressure_accelerates_away(self, small_grid, engine):
        """A zonal psa ridge must push U down-gradient (Lamb restoring)."""
        state = rest_state(small_grid)
        state.psa[:, :] = 100.0 * np.cos(2 * small_grid.lon)[None, :]
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.adaptation(w, vd)
        dU = interior(engine, tend.U)
        # the acceleration field must oppose the pressure gradient:
        # correlation with -d(psa)/dx is positive
        grad = np.roll(state.psa, -1, -1) - np.roll(state.psa, 1, -1)
        corr = float(np.sum(dU[0] * (-grad)))
        assert corr > 0

    def test_force_scale_matches_lamb_speed(self, small_grid, engine):
        """|dU/dt| ~ P R T~s |grad psa| / p0 for a small ridge."""
        state = rest_state(small_grid)
        amp = 10.0
        state.psa[:, :] = amp * np.cos(2 * small_grid.lon)[None, :]
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.adaptation(w, vd)
        dU = interior(engine, tend.U)
        j = small_grid.ny // 2
        dx = small_grid.cell_dx()[j]
        k_wave = 2.0 / (small_grid.radius * np.sin(small_grid.theta_c[j]))
        p_ref = np.sqrt(
            (constants.P_REFERENCE - constants.P_TOP) / constants.P_REFERENCE
        )
        expected = (
            p_ref * constants.R_DRY * 288.0 * amp * k_wave / constants.P_REFERENCE
        )
        measured = float(np.max(np.abs(dU[0, j])))
        assert measured == pytest.approx(expected, rel=0.3)


class TestMassBudget:
    def test_psa_tendency_conserves_mass(self, small_grid, engine, rng):
        """Area integral of the p'_sa tendency vanishes (up to D_sa)."""
        state = balanced_random_state(small_grid, rng)
        state.psa[:] = 0.0  # remove the diffusion term's contribution
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.adaptation(w, vd)
        area = small_grid.cell_area()[:, None] / small_grid.nx
        tp = interior(engine, tend.psa)
        integral = float(np.sum(tp * area))
        scale = float(np.sum(np.abs(tp) * area)) + 1e-30
        assert abs(integral) < 1e-9 * scale


class TestSurfaceDissipation:
    def test_damps_extrema(self, small_grid):
        sigma = SigmaLevels.uniform(small_grid.nz)
        geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
        psa = np.zeros(geom.shape2d)
        psa[8, 16] = 100.0
        d = surface_dissipation(psa, geom)
        assert d[8, 16] < 0  # diffusion pulls the spike down
        assert d[8, 15] > 0  # and spreads it to neighbours

    def test_constant_field_untouched(self, small_grid):
        sigma = SigmaLevels.uniform(small_grid.nz)
        geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
        psa = np.full(geom.shape2d, 50.0)
        d = surface_dissipation(psa, geom)
        assert np.allclose(d[2:-2], 0.0, atol=1e-12)


class TestCoriolis:
    def test_antisymmetric_energy_neutral(self, small_grid, engine):
        """The Coriolis pair must not change U^2 + V^2 (globally)."""
        state = rest_state(small_grid)
        rng = np.random.default_rng(7)
        # solid-body-ish smooth winds, no pressure/temperature signal
        state.U[:] = 5.0 * np.sin(small_grid.theta_c)[None, :, None]
        state.V[:] = 2.0 * np.sin(2 * small_grid.theta_v)[None, :, None]
        state.V[:, -1, :] = 0.0
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.adaptation(w, vd)
        # compare energy input of the Coriolis-only terms: with Phi = psa
        # = 0 the pressure terms vanish except the divergence feedback in
        # psa/Phi; the U,V tendencies are then Coriolis + metric only.
        gy = engine.geom.gy
        dU = tend.U[:, gy:-gy, :]
        dV = tend.V[:, gy:-gy, :]
        area = small_grid.cell_area()[:, None] / small_grid.nx
        power = float(np.sum((state.U * dU + state.V * dV) * area[None]))
        scale = float(
            np.sum((np.abs(state.U * dU) + np.abs(state.V * dV)) * area[None])
        )
        assert abs(power) < 0.05 * scale
