"""Failure detector, spare pool, shrink maps, and evidence extraction."""
import time

import pytest

from repro.simmpi import (
    FaultPlan,
    MachineModel,
    NodeLoss,
    RankCrash,
    RankLost,
    run_spmd,
)
from repro.simmpi.launcher import SpmdError
from repro.simmpi.membership import (
    FailureDetector,
    MembershipConfig,
    MembershipView,
    RankFailureEvidence,
    RankLossUnrecoverable,
    SparePool,
    evidence_from_failure,
    shrink_map,
)


class TestMembershipConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MembershipConfig(heartbeat_period=0.0)
        with pytest.raises(ValueError):
            MembershipConfig(suspicion_multiplier=0.5)
        with pytest.raises(ValueError):
            MembershipConfig(suspicion_jitter=1.5)
        with pytest.raises(ValueError):
            MembershipConfig(quorum=0.0)
        with pytest.raises(ValueError):
            MembershipConfig(permanent_after=0)


class TestEvidenceExtraction:
    def test_bare_rank_lost_is_node_loss(self):
        (ev,) = evidence_from_failure(RankLost(2, "gone"))
        assert ev.rank == 2
        assert ev.kind == "node-loss"
        assert ev.directly_permanent

    def test_bare_rank_crash_is_transient(self):
        (ev,) = evidence_from_failure(RankCrash(1))
        assert ev.kind == "crash"
        assert not ev.directly_permanent

    def test_unrelated_exception_yields_nothing(self):
        assert evidence_from_failure(ValueError("nope")) == ()

    def test_spmd_node_loss_thread_backend(self):
        def program(comm):
            for _ in range(6):
                comm.barrier()

        plan = FaultPlan(seed=3, node_losses=(NodeLoss(rank=1, at_call=3),))
        with pytest.raises(SpmdError) as err:
            run_spmd(4, program, faults=plan)
        evidence = evidence_from_failure(err.value)
        assert [(e.rank, e.kind) for e in evidence] == [(1, "node-loss")]
        assert evidence[0].t > 0.0  # logical death time from fault events

    def test_spmd_node_loss_process_backend(self):
        def program(comm):
            for _ in range(6):
                comm.barrier()

        plan = FaultPlan(seed=3, node_losses=(NodeLoss(rank=2, at_call=3),))
        with pytest.raises(SpmdError) as err:
            run_spmd(4, program, faults=plan, backend="process")
        kinds = {e.rank: e.kind for e in evidence_from_failure(err.value)}
        # the victim's OS process was SIGKILLed: either the recorded
        # node-loss event or the raw process death names rank 2
        assert kinds[2] in ("node-loss", "process-death")
        assert all(
            RankFailureEvidence(r, k).directly_permanent
            for r, k in kinds.items()
        )


class TestDetectorClassification:
    def test_node_loss_is_immediately_permanent(self):
        det = FailureDetector(4)
        d = det.decide((RankFailureEvidence(1, "node-loss", t=1e-3),))
        assert d.permanent == (1,)
        assert d.transient == ()
        assert d.lost == (1,)

    def test_single_crash_is_transient(self):
        det = FailureDetector(4)
        d = det.decide((RankFailureEvidence(1, "crash", t=1e-3),))
        assert d.permanent == ()
        assert d.transient == (1,)

    def test_flapping_rank_escalates_to_permanent(self):
        det = FailureDetector(4, MembershipConfig(permanent_after=2))
        first = det.decide((RankFailureEvidence(3, "crash"),))
        assert first.permanent == ()
        second = det.decide((RankFailureEvidence(3, "crash"),))
        assert second.permanent == (3,)

    def test_epoch_increments_per_round(self):
        det = FailureDetector(4)
        assert det.decide((RankFailureEvidence(1, "crash"),)).epoch == 1
        assert det.decide((RankFailureEvidence(2, "crash"),)).epoch == 2


class TestDeterministicTimeline:
    """Satellite: all detector timeouts are logical and seed-deterministic."""

    EVIDENCE = (RankFailureEvidence(1, "node-loss", t=2.34e-3),)

    def test_same_seed_same_decision(self):
        a = FailureDetector(8, MembershipConfig(seed=5)).decide(self.EVIDENCE)
        b = FailureDetector(8, MembershipConfig(seed=5)).decide(self.EVIDENCE)
        assert a == b

    def test_different_seed_different_jitter(self):
        a = FailureDetector(8, MembershipConfig(seed=5)).decide(self.EVIDENCE)
        b = FailureDetector(8, MembershipConfig(seed=6)).decide(self.EVIDENCE)
        assert a.declared_at != b.declared_at

    def test_suspicion_after_death_and_quorum_ordering(self):
        cfg = MembershipConfig(seed=0)
        det = FailureDetector(8, cfg)
        d = det.decide(self.EVIDENCE)
        for lr, t in d.declared_at.items():
            assert t > self.EVIDENCE[0].t
        assert d.consensus_at > max(d.declared_at.values())
        assert d.overhead > 0.0
        # quorum: strictly more than half the 7 survivors by default
        assert d.nsurvivors == 7
        assert d.quorum_votes == 3

    def test_suspicion_timeout_bounds(self):
        cfg = MembershipConfig()
        det = FailureDetector(4, cfg)
        t_fail = 7.7e-4
        lo = cfg.suspicion_multiplier * cfg.heartbeat_period
        hi = lo * (1.0 + cfg.suspicion_jitter)
        for obs in (0, 2, 3):
            t = det.suspicion_time(obs, 1, t_fail)
            last_beat = (t_fail // cfg.heartbeat_period) * cfg.heartbeat_period
            assert last_beat + lo <= t <= last_beat + hi

    def test_detection_is_charged_not_slept(self):
        """The detection round must consume zero wall-clock sleeps even
        though it charges milliseconds of logical suspicion time."""
        det = FailureDetector(64, MembershipConfig(), MachineModel())
        start = time.monotonic()
        d = det.decide(self.EVIDENCE)
        assert time.monotonic() - start < 0.5
        assert d.overhead > det.config.heartbeat_period  # logical, charged


class TestSparePoolAndShrinkMap:
    def test_spare_pool_adopts_in_order(self):
        pool = SparePool(size=2)
        assert pool.available == 2
        assert pool.adopt(3) == 0
        assert pool.adopt(1) == 1
        assert pool.available == 0
        with pytest.raises(RankLossUnrecoverable):
            pool.adopt(2)

    def test_shrink_map_is_dense_and_order_preserving(self):
        m = shrink_map(6, (1, 4))
        assert m == {0: 0, 2: 1, 3: 2, 5: 3}
        assert sorted(m.values()) == list(range(4))

    def test_shrink_map_rejects_losing_everyone(self):
        with pytest.raises(ValueError):
            shrink_map(2, (0, 1))


class TestMembershipView:
    def test_spare_rebuild_keeps_size(self):
        view = MembershipView(4, spares=2)
        plan = view.rebuild((2,), "spare")
        assert plan.kind == "spare"
        assert plan.new_size == 4
        assert plan.adopted == {2: 0}
        assert view.nranks == 4
        assert view.epoch == 1

    def test_spare_pool_dry_falls_back_to_shrink(self):
        view = MembershipView(4, spares=1)
        assert view.rebuild((1,), "spare").kind == "spare"
        fallback = view.rebuild((2,), "spare")
        assert fallback.kind == "shrink"
        assert fallback.new_size == 3
        assert view.nranks == 3

    def test_shrink_rebuild_renumbers_survivors(self):
        view = MembershipView(5)
        plan = view.rebuild((0, 3), "shrink")
        assert plan.kind == "shrink"
        assert plan.new_size == 3
        assert plan.rank_map == {1: 0, 2: 1, 4: 2}
        assert view.nranks == 3

    def test_losing_all_ranks_is_unrecoverable(self):
        view = MembershipView(2)
        with pytest.raises(RankLossUnrecoverable):
            view.rebuild((0, 1), "shrink")
