"""Parameter sweeps and load-imbalance diagnostics."""
import pytest

from repro.analysis.imbalance import compare_decompositions, filter_imbalance
from repro.bench.sweeps import (
    latency_sweep,
    m_iterations_sweep,
    render_sweep,
    resolution_sweep,
)
from repro.grid.decomposition import Decomposition, yz_decomposition
from repro.grid.latlon import LatLonGrid, paper_grid


class TestResolutionSweep:
    def test_three_points_by_default(self):
        pts = resolution_sweep(nprocs=256)
        assert len(pts) == 3
        assert pts[-1].label == "720x360x30"

    def test_ca_wins_everywhere(self):
        for p in resolution_sweep(nprocs=256):
            assert p.ca_speedup_vs_yz > 1.0
            assert p.ca_speedup_vs_xy > 1.0


class TestMSweep:
    def test_ca_ahead_for_all_m(self):
        pts = m_iterations_sweep(nprocs=512, m_values=[1, 2, 3, 4])
        assert all(p.ca_speedup_vs_yz > 1.0 for p in pts)

    def test_redundancy_erodes_speedup_ratio(self):
        """On small blocks the 3M-wide halos' redundant compute grows
        faster than the exchange savings: the speedup *ratio* shrinks
        with M (CA still wins absolutely)."""
        pts = m_iterations_sweep(nprocs=512, m_values=[1, 2, 3, 4])
        speedups = [p.ca_speedup_vs_yz for p in pts]
        assert speedups == sorted(speedups, reverse=True)


class TestLatencySweep:
    def test_advantage_grows_with_latency(self):
        pts = latency_sweep(nprocs=512, factors=[0.25, 1.0, 4.0])
        speedups = [p.ca_speedup_vs_yz for p in pts]
        assert speedups == sorted(speedups)

    def test_render(self):
        text = render_sweep(latency_sweep(factors=[1.0]), "latency sweep")
        assert "CA/YZ" in text and "latency x1" in text


class TestFilterImbalance:
    def test_yz_concentrates_filter_work(self):
        """Under Y-Z (rows split across many ranks) most ranks own no
        filtered rows: severe imbalance, the cost hidden inside the
        bulk-synchronous step."""
        grid = paper_grid()
        rep = filter_imbalance(grid, yz_decomposition(720, 360, 30, 256))
        assert rep.idle_fraction > 0.5
        assert rep.imbalance_factor > 2.0

    def test_single_rank_balanced(self):
        grid = LatLonGrid(nx=32, ny=16, nz=4)
        rep = filter_imbalance(grid, Decomposition(32, 16, 4, 1, 1, 1))
        assert rep.imbalance_factor == 1.0
        assert rep.idle_fraction == 0.0

    def test_work_accounting_per_decomposition(self):
        """Y-Z work totals the physical filter rows x levels; X-Y work is
        replicated across each x line (every member pays the line's FFT
        after the allgather), so it totals px times that."""
        grid = paper_grid()
        reports = compare_decompositions(grid, 64)
        filtered_rows = int(
            (abs(grid.latitude_degrees()) > 70.0).sum()
        )
        base = filtered_rows * grid.nz
        assert reports["yz"].work_per_rank.sum() == pytest.approx(base)
        px = reports["xy"].decomposition.px
        assert reports["xy"].work_per_rank.sum() == pytest.approx(base * px)

    def test_equatorial_band_has_zero_work(self):
        grid = LatLonGrid(nx=64, ny=32, nz=4)
        decomp = Decomposition(64, 32, 4, 1, 8, 1)
        rep = filter_imbalance(grid, decomp)
        # middle ranks own only equatorward rows
        mid = decomp.nranks // 2
        assert rep.work_per_rank[mid] == 0.0
        # pole ranks own all of it
        assert rep.work_per_rank[0] > 0
        assert rep.work_per_rank[-1] > 0
