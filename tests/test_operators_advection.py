"""The advection operator L (Eq. 3)."""
import numpy as np
import pytest

from repro.constants import ModelParameters
from repro.core.tendencies import TendencyEngine
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.physics import balanced_random_state, rest_state
from repro.state.variables import ModelState


@pytest.fixture
def engine(small_grid):
    sigma = SigmaLevels.uniform(small_grid.nz)
    geom = WorkingGeometry.build_global(small_grid, sigma, gy=2, gz=0)
    return TendencyEngine(geom, ModelParameters())


def pad(engine, state):
    w = ModelState.zeros(engine.geom.shape3d)
    gy = engine.geom.gy
    for name, arr in state.fields().items():
        getattr(w, name)[..., gy:-gy, :] = arr
    engine.fill_physical_ghosts(w)
    return w


def interior(engine, arr):
    gy = engine.geom.gy
    return arr[..., gy:-gy, :]


class TestAdvectionBasics:
    def test_rest_state_steady(self, small_grid, engine):
        w = pad(engine, rest_state(small_grid))
        vd = engine.vertical(w)
        tend = engine.advection(w, vd)
        for arr in (tend.U, tend.V, tend.Phi):
            assert np.allclose(interior(engine, arr), 0.0, atol=1e-14)

    def test_psa_not_advected(self, small_grid, engine, rng):
        state = balanced_random_state(small_grid, rng)
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.advection(w, vd)
        assert np.all(tend.psa == 0.0)

    def test_pure_rotation_preserves_uniform_tracer(self, small_grid, engine):
        """A constant Phi field has (near-)zero advective tendency even in
        non-trivial flow: the 2F - F form reduces to -F * div(c) / 2 ...
        which cancels against the flux term for F = const."""
        state = rest_state(small_grid)
        state.U[:] = 3.0 * np.sin(small_grid.theta_c)[None, :, None]
        state.Phi[:] = 5.0
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.advection(w, vd)
        tphi = interior(engine, tend.Phi)
        # L(const) = const * (div c) / 2 in flux form; with the zonal
        # solid-body flow the discrete divergence vanishes
        assert np.allclose(tphi, 0.0, atol=1e-10)

    def test_quadratic_invariant_bounded(self, small_grid, engine, rng):
        """The antisymmetric flux form approximately conserves sum(F^2):
        the power <F, L(F)> is small relative to |F| |L(F)|."""
        state = balanced_random_state(small_grid, rng, wind_amplitude=5.0)
        w = pad(engine, state)
        vd = engine.vertical(w)
        tend = engine.advection(w, vd)
        area = small_grid.cell_area()[:, None] / small_grid.nx
        gy = engine.geom.gy
        phi_i = state.Phi
        tphi = tend.Phi[:, gy:-gy, :]
        power = float(np.sum(phi_i * tphi * area[None]))
        scale = float(np.sum(np.abs(phi_i * tphi) * area[None])) + 1e-30
        assert abs(power) < 0.2 * scale


class TestVerticalAdvection:
    def test_uses_frozen_sigma_dot(self, small_grid, engine, rng):
        """Different vd bundles change only the sigma-dot pathway."""
        state = balanced_random_state(small_grid, rng)
        w = pad(engine, state)
        vd1 = engine.vertical(w)
        # zero out the vertical velocity: L3 must vanish
        vd1.sdot_iface[:] = 0.0
        tend = engine.advection(w, vd1)
        # compare against a run with real sdot
        vd2 = engine.vertical(w)
        tend2 = engine.advection(w, vd2)
        # with generic random states the two differ (L3 is active)
        assert not np.allclose(
            interior(engine, tend.U), interior(engine, tend2.U)
        )
