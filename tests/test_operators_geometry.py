"""WorkingGeometry: extended metrics and shapes."""
import numpy as np
import pytest

from repro.grid.decomposition import BlockExtent
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry


@pytest.fixture
def grid():
    return LatLonGrid(nx=16, ny=12, nz=6)


@pytest.fixture
def sigma():
    return SigmaLevels.uniform(6)


class TestGlobalGeometry:
    def test_shapes(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=2, gz=0)
        assert g.shape3d == (6, 16, 16)
        assert g.shape2d == (16, 16)
        assert g.full_x

    def test_boundary_flags(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=2, gz=0)
        assert g.touches_north and g.touches_south
        assert g.touches_top and g.touches_bottom

    def test_ghost_metric_mirrors_physical(self, grid, sigma):
        """|sin| at a ghost row equals sin at its mirror row; cos matches
        too (even about the pole)."""
        g = WorkingGeometry.build_global(grid, sigma, gy=2, gz=0)
        # ghost row gy-1 mirrors interior row gy
        assert g.sin_c[1] == pytest.approx(g.sin_c[2])
        assert g.cos_c[1] == pytest.approx(g.cos_c[2])
        # ghost row gy-2 mirrors interior row gy+1
        assert g.sin_c[0] == pytest.approx(g.sin_c[3])

    def test_sin_v_never_zero(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=3, gz=0)
        assert np.all(g.sin_v > 0)

    def test_interior_views(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=2, gz=0)
        a = np.zeros(g.shape3d)
        assert g.interior3d(a).shape == (6, 12, 16)
        b = np.zeros(g.shape2d)
        assert g.interior2d(b).shape == (12, 16)


class TestBlockGeometry:
    def test_z_ghost_sigma_replicated(self, grid, sigma):
        ext = BlockExtent(0, 16, 0, 12, 2, 4)
        g = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=2)
        # ghost below z0=2 replicates level 0's clipped values
        assert g.sigma_mid[0] == pytest.approx(sigma.mid[0])
        assert g.sigma_mid[1] == pytest.approx(sigma.mid[1])
        assert g.sigma_mid[2] == pytest.approx(sigma.mid[2])
        assert g.dsigma.shape == (2 + 2 * 2,)

    def test_interior_block_flags(self, grid, sigma):
        ext = BlockExtent(0, 16, 3, 9, 2, 4)
        g = WorkingGeometry.build(grid, sigma, ext, gy=2, gz=1)
        assert not g.touches_north and not g.touches_south
        assert not g.touches_top and not g.touches_bottom

    def test_rejects_gx_on_full_rows(self, grid, sigma):
        ext = BlockExtent(0, 16, 0, 12, 0, 6)
        with pytest.raises(ValueError):
            WorkingGeometry.build(grid, sigma, ext, gy=2, gz=0, gx=2)

    def test_rejects_mismatched_sigma(self, grid):
        bad = SigmaLevels.uniform(4)
        ext = BlockExtent(0, 16, 0, 12, 0, 6)
        with pytest.raises(ValueError):
            WorkingGeometry.build(grid, bad, ext, gy=1, gz=0)

    def test_broadcast_helpers(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=1, gz=0)
        assert g.row3(g.sin_c).shape == (1, 14, 1)
        assert g.row2(g.sin_c).shape == (14, 1)
        assert g.lev3(g.sigma_mid).shape == (6, 1, 1)

    def test_physical_spacings(self, grid, sigma):
        g = WorkingGeometry.build_global(grid, sigma, gy=1, gz=0)
        assert g.a_dlambda == pytest.approx(grid.radius * grid.dlambda)
        assert g.a_dtheta == pytest.approx(grid.radius * grid.dtheta)
