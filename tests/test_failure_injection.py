"""Failure injection: the substrate and cores fail loudly, not silently."""
import numpy as np
import pytest

from repro.simmpi import SpmdError, run_spmd


class TestSubstrateFailures:
    def test_mismatched_collective_deadlocks(self):
        """One rank skipping a collective must raise, not hang forever."""
        def prog(comm):
            if comm.rank != 0:
                comm.allreduce(np.zeros(4))

        with pytest.raises(SpmdError):
            run_spmd(3, prog, timeout=0.5)

    def test_wrong_tag_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(2), tag=1)
            else:
                comm.recv(0, tag=2)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=0.5)
        assert "timed out" in str(exc_info.value)

    def test_exception_in_one_rank_reported(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("injected fault")
            return comm.rank

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=1.0)
        assert "injected fault" in exc_info.value.failures[1]

    def test_partial_failure_does_not_corrupt_others(self):
        """Ranks that complete before the faulty one still produce
        results (the launcher reports the failure regardless)."""
        def prog(comm):
            if comm.rank == 2:
                raise RuntimeError("late fault")
            return comm.rank * 2

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=1.0)
        assert set(exc_info.value.failures) == {2}


class TestFailureDiagnostics:
    """The improved error messages name ranks, tags and backlogs."""

    def test_recv_timeout_names_source_tag_and_backlog(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(2), tag=7)
                comm.send(1, np.zeros(2), tag=7)
            else:
                comm.recv(0, tag=3)

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, prog, timeout=0.5)
        msg = str(exc_info.value)
        assert "recv(source=0, tag=3)" in msg
        assert "(src=0, tag=7) x2" in msg  # pending mailbox contents

    def test_collective_timeout_names_arrived_and_missing_ranks(self):
        def prog(comm):
            if comm.rank != 2:
                comm.allreduce(np.zeros(4))

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=0.5)
        msg = str(exc_info.value)
        assert "ranks [2] missing" in msg

    def test_spmd_error_summarizes_every_failing_rank(self):
        def prog(comm):
            raise ValueError(f"boom on {comm.rank}")

        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=1.0)
        msg = str(exc_info.value)
        for r in range(3):
            assert f"rank {r}: ValueError: boom on {r}" in msg
        assert sorted(exc_info.value.exceptions) == [0, 1, 2]
        assert all(
            isinstance(e, ValueError)
            for e in exc_info.value.exceptions.values()
        )

    def test_one_rank_failure_aborts_survivors_quickly(self):
        """A crashed rank must not make survivors wait out the timeout."""
        import time

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.recv(0, tag=0)  # would block until timeout without abort

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(3, prog, timeout=60.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 30.0, f"abort was not fast: {elapsed:.1f}s"
        assert "aborted" in str(exc_info.value)
        assert isinstance(exc_info.value.exceptions[0], RuntimeError)


class TestCoreFailures:
    def test_nan_state_detected(self):
        from repro.constants import ModelParameters
        from repro.core.integrator import SerialCore
        from repro.grid.latlon import LatLonGrid
        from repro.physics import rest_state

        grid = LatLonGrid(nx=16, ny=8, nz=4)
        core = SerialCore(
            grid, params=ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
        )
        state = rest_state(grid)
        state.Phi[0, 4, 8] = np.nan
        with pytest.raises((FloatingPointError, ValueError)):
            core.run(state, 3)

    def test_infeasible_ca_block_reports_rank(self):
        from repro.constants import ModelParameters
        from repro.core.comm_avoiding import ca_rank_program
        from repro.core.distributed import DistributedConfig
        from repro.grid.decomposition import Decomposition
        from repro.grid.latlon import LatLonGrid
        from repro.physics import rest_state

        grid = LatLonGrid(nx=16, ny=8, nz=4)
        params = ModelParameters(
            dt_adaptation=60.0, dt_advection=180.0, m_iterations=3
        )
        decomp = Decomposition(16, 8, 4, 1, 2, 1)  # ny_l=4 << gy=11
        cfg = DistributedConfig(grid=grid, decomp=decomp, params=params)
        with pytest.raises(SpmdError) as exc_info:
            run_spmd(2, ca_rank_program, cfg, rest_state(grid), timeout=5.0)
        assert "too small" in str(exc_info.value)
