"""Section 5.3: the asymptotic W (communication) and S (latency) costs.

Evaluates the Theta-expressions at paper scale and asserts the orderings
``W_XY >> W_YZ > W_CA`` and ``S_XY > S_YZ > S_CA``.
"""
from repro.analysis.lower_bounds import section53_costs
from repro.grid.decomposition import xy_decomposition, yz_decomposition
from repro.grid.latlon import paper_grid
from repro.perf.model import PAPER_PROC_SWEEP


def _evaluate():
    g = paper_grid()
    rows = []
    for p in PAPER_PROC_SWEEP:
        dyz = yz_decomposition(g.nx, g.ny, g.nz, p)
        dxy = xy_decomposition(g.nx, g.ny, g.nz, p)
        row = {"p": p}
        for alg, d in (("ca", dyz), ("yz", dyz), ("xy", dxy)):
            c = section53_costs(alg, g.nx, g.ny, g.nz, d.px, d.py, d.pz)
            row[f"W_{alg}"] = c.W
            row[f"S_{alg}"] = c.S
        rows.append(row)
    return rows


def test_sec53_costs(benchmark):
    rows = benchmark(_evaluate)
    print()
    print(f"{'p':>6} {'W_ca':>12} {'W_yz':>12} {'W_xy':>12} "
          f"{'S_ca':>6} {'S_yz':>6} {'S_xy':>6}")
    for r in rows:
        print(f"{r['p']:>6} {r['W_ca']:>12.0f} {r['W_yz']:>12.0f} "
              f"{r['W_xy']:>12.0f} {r['S_ca']:>6.0f} {r['S_yz']:>6.0f} "
              f"{r['S_xy']:>6.0f}")
        # the Sec. 5.3 orderings at every process count
        assert r["W_xy"] > r["W_yz"] > r["W_ca"]
        assert r["S_xy"] > r["S_yz"] > r["S_ca"]
        # the exact frequency ratio of the approximate iteration
        assert abs(r["W_yz"] / r["W_ca"] - 1.5) < 1e-9
    benchmark.extra_info["rows"] = [
        {k: round(v, 1) for k, v in r.items()} for r in rows
    ]
