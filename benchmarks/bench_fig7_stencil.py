"""Figure 7: communication time of the stencil computation.

Shape claims (Sec. 5.2): X-Y's stencil volume is the smallest of the
originals (n_x >> n_y, n_z); the CA algorithm needs slightly more volume
than the Y-Z original but cuts the frequency 13 -> 2 and overlaps, giving
3x-6x (avg 3.9x) speedup; at p = 1024 the paper reports 17,400 s -> 2,800 s.
"""
from repro.bench.harness import fig7_stencil_time
from repro.perf.model import PAPER_PROC_SWEEP

from conftest import record_series


def test_fig7_stencil_time(benchmark, paper_model):
    fig = benchmark(fig7_stencil_time, PAPER_PROC_SWEEP, paper_model)
    record_series(benchmark, fig)
    print()
    print(fig.render())

    xy = fig.series["original-xy"]
    yz = fig.series["original-yz"]
    ca = fig.series["ca"]
    # X-Y stencil < Y-Z stencil (volume argument of Sec. 5.2)
    assert all(x < y for x, y in zip(xy, yz))
    # CA speedup vs Y-Z: 3x-6x range, ~3.9x average
    ratios = [y / c for y, c in zip(yz, ca)]
    avg = sum(ratios) / len(ratios)
    benchmark.extra_info["ca_vs_yz_speedup_avg"] = round(avg, 3)
    assert all(2.5 < r < 6.5 for r in ratios)
    assert 3.3 < avg < 4.5
    # the paper's p = 1024 anchor: 17,400 s for Y-Z
    assert abs(yz[-1] - 17_400) / 17_400 < 0.25
