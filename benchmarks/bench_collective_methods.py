"""Collective-implementation ablations (Thakur et al. 2005, ref. [19]).

Compares, on the executed cores:

* the ``C`` operator via allgather (column replication) vs exscan +
  allreduce (volume-optimal, the Theorem 4.2 ring constant);
* the X-Y polar filter via allgather (replicated FFT) vs alltoall
  transpose (work-sharing).

Numerics must agree across variants; the accounting differences are the
deliverable.
"""

from repro.constants import ModelParameters
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import run_spmd
from repro.state.variables import ModelState


def _gather(decomp, results):
    blocks = [r.state for r in results]
    return ModelState(
        U=decomp.gather([b.U for b in blocks]),
        V=decomp.gather([b.V for b in blocks]),
        Phi=decomp.gather([b.Phi for b in blocks]),
        psa=decomp.gather([b.psa for b in blocks]),
    )


def test_c_method_ablation(benchmark):
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 4)

    def run_both():
        out = {}
        for method in ("allgather", "scan"):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=2,
                c_method=method,
            )
            out[method] = run_spmd(
                decomp.nranks, original_rank_program, cfg, state0
            )
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for method, res in out.items():
        bytes_ = max(s.collective_bytes for s in res.stats)
        ops = max(s.collective_ops for s in res.stats)
        print(f"C via {method:>9}: {ops:>3} collective ops, "
              f"{bytes_:>9} modelled bytes")
        benchmark.extra_info[f"{method}_bytes"] = bytes_
        benchmark.extra_info[f"{method}_ops"] = ops
    # identical numerics
    a = _gather(decomp, out["allgather"].results)
    b = _gather(decomp, out["scan"].results)
    assert a.max_difference(b) < 1e-10
    # the scan variant moves strictly fewer bytes
    assert (
        max(s.collective_bytes for s in out["scan"].stats)
        < max(s.collective_bytes for s in out["allgather"].stats)
    )


def test_filter_method_ablation(benchmark):
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(dt_adaptation=60.0, dt_advection=180.0)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 4, 2, 1)

    def run_both():
        out = {}
        for method in ("allgather", "transpose"):
            cfg = DistributedConfig(
                grid=grid, decomp=decomp, params=params, nsteps=2,
                filter_method=method,
            )
            out[method] = run_spmd(
                decomp.nranks, original_rank_program, cfg, state0
            )
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for method, res in out.items():
        compute = sum(s.compute_time for s in res.stats)
        ops = max(s.collective_ops for s in res.stats)
        print(f"filter via {method:>9}: {ops:>3} collective ops, "
              f"total compute {compute:.6f} s")
        benchmark.extra_info[f"{method}_compute_s"] = compute
    a = _gather(decomp, out["allgather"].results)
    b = _gather(decomp, out["transpose"].results)
    assert a.max_difference(b) < 1e-10
    # transpose shares the FFT work
    assert (
        sum(s.compute_time for s in out["transpose"].stats)
        < sum(s.compute_time for s in out["allgather"].stats)
    )
