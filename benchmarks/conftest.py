"""Shared benchmark fixtures.

Two classes of benchmark:

* ``bench_fig*`` — regenerate a paper figure/table; the *timed* callable
  is the regeneration itself, and the figure data (the actual deliverable)
  is attached as ``extra_info`` and asserted against the paper's shape
  claims.
* ``bench_execution`` / ``bench_ablation`` — time the executable cores on
  the simulated cluster and record the logical-clock decomposition.
"""
from __future__ import annotations

import pytest

from repro.grid.latlon import paper_grid
from repro.perf.model import PerformanceModel


@pytest.fixture(scope="session")
def paper_model() -> PerformanceModel:
    """The calibrated projection model at paper scale (10 model years)."""
    return PerformanceModel(paper_grid())


def record_series(benchmark, fig) -> None:
    """Attach a FigureSeries' data to the benchmark record."""
    benchmark.extra_info["figure"] = fig.figure
    benchmark.extra_info["unit"] = fig.unit
    benchmark.extra_info["procs"] = fig.procs
    for name, values in fig.series.items():
        benchmark.extra_info[name] = [round(v, 2) for v in values]
