#!/usr/bin/env python
"""Wall-clock benchmark CLI: emit and gate BENCH_<date>.json artifacts.

Usage:

    PYTHONPATH=src python benchmarks/harness.py --quick \
        --out artifacts/ --baseline benchmarks/baseline/BENCH_baseline.json

Runs the executed-kernel benchmark suite of :mod:`repro.perf.wallclock`
(serial + distributed step throughput, per-kernel breakdown, workspace
allocation counters) and writes a schema-versioned JSON report.  With
``--baseline`` the report is compared against the committed reference and
the process exits nonzero when step throughput regresses by more than
``--tolerance`` (default 20%) — this is the CI gate.

``--check`` only compares an existing report (no benchmarks are run).
"""
from __future__ import annotations

import argparse
import datetime
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.wallclock import (  # noqa: E402
    compare_reports,
    kernel_tier_violations,
    load_report,
    overlap_violations,
    parallel_scaling_violations,
    recovery_mttr_violations,
    run_benchmarks,
    transport_overhead_violations,
    write_report,
)


def _render(report: dict) -> str:
    lines = [f"benchmark report (schema v{report['schema_version']}, "
             f"quick={report['quick']})"]
    for case in report["cases"]:
        if case["kind"] == "kernels":
            lines.append(f"  kernels [{case['mesh']}]:")
            for name, rec in case["kernels"].items():
                lines.append(
                    f"    {name:<11} seed {rec['seed_ms']:8.3f} ms   "
                    f"ws {rec['ws_ms']:8.3f} ms   x{rec['speedup']:.2f}"
                )
            continue
        if case["kind"] == "kernel_tiers":
            gate = " [gate]" if case.get("gate_enforced") else ""
            bits = "bit-identical" if case["bit_identical"] else "DIVERGED"
            lines.append(
                f"  kernel tiers [{case['mesh']:<6}] "
                f"reference {case['reference_ms_per_step']:8.2f} ms/step   "
                f"fused[{case['backend']}] "
                f"{case['fused_ms_per_step']:8.2f} ms/step   "
                f"x{case['speedup']:.2f}  ({bits}){gate}"
            )
            continue
        if case["kind"] == "transport_overhead":
            tag = f"transport {case['algorithm']}@{case['nprocs']}"
            lines.append(
                f"  {tag:<28} [{case['mesh']:<6}] "
                f"plain {case['plain_ms_per_step']:8.2f} ms/step   "
                f"resilient {case['resilient_ms_per_step']:8.2f} ms/step"
            )
            lines.append(
                f"  {'':<28} logical overhead "
                f"{case['logical_overhead_frac'] * 100.0:+.3f}%   "
                f"wall {case['wall_overhead_frac'] * 100.0:+.1f}% "
                f"(informational)"
            )
            continue
        if case["kind"] == "recovery_mttr":
            lines.append(
                f"  recovery mttr [{case['mesh']:<6}] "
                f"{case['algorithm']}@{case['nprocs']}, "
                f"clean makespan {case['clean_makespan']:.4f} s"
            )
            for policy, rec in case["policies"].items():
                anomaly = (
                    "bit-identical" if rec["trajectory_max_diff"] == 0.0
                    else f"ANOMALY {rec['trajectory_max_diff']:.3e}"
                )
                lines.append(
                    f"    {policy:<7} mttr {rec['mttr'] * 1e3:8.3f} ms "
                    f"(detect {rec['detect_s'] * 1e3:.3f} + migrate "
                    f"{rec['migrate_s'] * 1e3:.3f})   "
                    f"overhead {rec['recovery_frac'] * 100.0:.1f}%   "
                    f"-> {rec['final_nranks']} ranks via {rec['source']} "
                    f"({anomaly})"
                )
            continue
        if case["kind"] == "overlap":
            tag = f"overlap {case['algorithm']}@{case['nprocs']}"
            gate = " [gate]" if case.get("gate_enforced") else ""
            lines.append(
                f"  {tag:<28} [{case['mesh']:<6}] "
                f"sync {case['sync_ms_per_step']:8.2f} ms/step   "
                f"taskgraph {case['taskgraph_ms_per_step']:8.2f} ms/step   "
                f"x{case['taskgraph_over_sync']:.2f}{gate}"
            )
            lines.append(
                f"  {'':<28} {case['overlap_windows']} comm windows, "
                f"{case['overlap_seconds'] * 1e3:.1f} ms compute "
                f"overlapped (sum over ranks)"
            )
            continue
        if case["kind"] == "parallel_scaling":
            tag = f"scaling {case['algorithm']}@{case['nprocs']}"
            gate = " [gate]" if case.get("gate_enforced") else ""
            lines.append(
                f"  {tag:<28} [{case['mesh']:<6}] "
                f"{case['ms_per_step']:8.2f} ms/step   "
                f"x{case['speedup_vs_serial']:.2f} vs serial "
                f"({case['serial_ws_ms_per_step']:.2f} ms)   "
                f"eff {case['efficiency'] * 100.0:.0f}%"
                f"{gate}"
            )
            continue
        tag = case["kind"] + (
            f" {case['algorithm']}@{case['nprocs']}" if "algorithm" in case
            else ""
        )
        lines.append(
            f"  {tag:<28} [{case['mesh']:<6}] "
            f"seed {case['seed_ms_per_step']:8.2f} ms/step   "
            f"ws {case['ws_ms_per_step']:8.2f} ms/step   "
            f"x{case['speedup']:.2f}  ({case['steps_per_sec']:.2f} steps/s)"
        )
        if "allocations" in case:
            a = case["allocations"]
            lines.append(
                f"  {'':<28} pool: {a['fresh']} fresh / {a['reuses']} "
                f"reuses / {a['pooled_bytes'] / 1e6:.2f} MB parked"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run: small mesh, fewer steps")
    ap.add_argument("--tiers", action="store_true",
                    help="kernel-tier cases only: medium-mesh reference vs "
                         "fused with the bit-identity + speedup gates")
    ap.add_argument("--repeats", type=int, default=1,
                    help="best-of-N repeats for the serial throughput cases")
    ap.add_argument("--out", default=".",
                    help="directory (or full path) of the emitted JSON")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline JSON to gate against")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional throughput drop (default 0.2)")
    ap.add_argument("--transport-limit", type=float, default=0.05,
                    help="max fault-free logical overhead of the reliable "
                         "transport (default 0.05)")
    ap.add_argument("--recovery-limit", type=float, default=0.5,
                    help="max rank-loss recovery time as a fraction of the "
                         "fault-free makespan (default 0.5)")
    ap.add_argument("--check", default=None, metavar="REPORT",
                    help="compare an existing report only; run nothing")
    ap.add_argument("--profile", default=None, metavar="OUT",
                    help="run the sampling profiler over the benchmark "
                         "suite; writes a collapsed-stack flamegraph file")
    args = ap.parse_args(argv)

    profiler = None
    if args.profile is not None and args.check is None:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler(out=args.profile)
        profiler.start()

    if args.check is not None:
        report = load_report(args.check)
    elif args.tiers:
        from repro.perf.wallclock import (
            MEDIUM,
            SMALL,
            BENCH_SEED,
            SCHEMA_VERSION,
            bench_kernel_tiers,
            machine_info,
        )

        report = {
            "schema_version": SCHEMA_VERSION,
            "quick": args.quick,
            "bench_seed": BENCH_SEED,
            "machine": machine_info(),
            "cases": [
                bench_kernel_tiers(
                    SMALL if args.quick else MEDIUM, repeats=args.repeats
                )
            ],
        }
    else:
        report = run_benchmarks(quick=args.quick, repeats=args.repeats)
    if profiler is not None:
        profiler.stop()
        print(f"profile: {profiler.write()} "
              f"({profiler.nsamples} samples @ {profiler.config.hz:g} Hz)")
    if args.check is None:
        out = Path(args.out)
        if out.suffix != ".json":
            stamp = datetime.date.today().isoformat()
            out = out / f"BENCH_{stamp}.json"
        path = write_report(report, out)
        print(f"wrote {path}")
    print(_render(report))
    baseline = load_report(args.baseline) if args.baseline else None

    # absolute gate: the fused kernel tier must track the reference tier
    # bit for bit, and (where a compiled backend resolved on the medium
    # mesh) at least double its step rate.  Hosts without a C compiler or
    # numba run the numpy fallback: recorded, warned about, never gated.
    tiers = kernel_tier_violations(report, baseline)
    if tiers:
        print("\nKERNEL TIER gate failures:")
        for v in tiers:
            print(f"  {v}")
        return 1
    soft = [
        c for c in report["cases"]
        if c.get("kind") == "kernel_tiers" and not c.get("gate_enforced")
    ]
    for c in soft:
        print(f"\nnote: kernel-tier speedup gate skipped on "
              f"{c['mesh']} (backend {c['backend']!r}, "
              f"compiled={c['compiled']}) — recorded only")

    # absolute gate, no baseline needed: a clean run through the
    # reliable transport must stay within --transport-limit of the raw
    # network's logical makespan
    violations = transport_overhead_violations(
        report, limit=args.transport_limit
    )
    if violations:
        print("\nTRANSPORT OVERHEAD over limit:")
        for v in violations:
            print(f"  {v}")
        return 1

    # absolute gates on the elastic tier: rank-loss recovery must stay
    # within --recovery-limit of the fault-free makespan, and the
    # recovered trajectory must be bit-identical to the fault-free
    # reference at the recovered layout (zero-tolerance anomaly gate)
    recovery = recovery_mttr_violations(report, limit=args.recovery_limit)
    if recovery:
        print("\nRECOVERY MTTR gate failures:")
        for v in recovery:
            print(f"  {v}")
        return 1

    # absolute gate: the task-graph executor must keep its per-step wall
    # time within the configured factor of the sync executor's and must
    # have actually opened comm windows — enforced only where the host
    # has the cores for the process ranks to genuinely overlap
    overlap = overlap_violations(report)
    if overlap:
        print("\nOVERLAP EXECUTOR gate failures:")
        for v in overlap:
            print(f"  {v}")
        return 1
    soft_overlap = [
        c for c in report["cases"]
        if c.get("kind") == "overlap" and not c.get("gate_enforced")
    ]
    for c in soft_overlap:
        print(f"\nnote: overlap-executor gate recorded but not enforced "
              f"on {c['mesh']} (host has {c['cpu_count']} core(s), "
              f"case uses {c['nprocs']} ranks)")

    # absolute gate: CA on process ranks must beat the serial step —
    # enforced only where the host actually has the cores
    scaling = parallel_scaling_violations(report)
    if scaling:
        print("\nPARALLEL SCALING below serial:")
        for v in scaling:
            print(f"  {v}")
        return 1
    ncpu = report.get("machine", {}).get("cpu_count") or 1
    gated = [
        c for c in report["cases"]
        if c.get("kind") == "parallel_scaling" and c.get("gate_beats_serial")
    ]
    if gated and not any(c.get("gate_enforced") for c in gated):
        print(f"\nnote: parallel-scaling gate recorded but not enforced "
              f"(host has {ncpu} core(s))")

    if baseline is not None:
        regressions = compare_reports(
            report, baseline, tolerance=args.tolerance
        )
        if regressions:
            print("\nREGRESSIONS vs baseline:")
            for r in regressions:
                print(f"  {r}")
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(tolerance {args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
