"""Disabled-overhead gate of the observability layer.

The `repro.obs` span tracer is threaded through every hot path of the
executed core (`step > tendency > operator`, the exchange windows, the
simulated communicator).  The design contract is that a *disabled*
tracer — the default — costs near nothing: `span()` is one module-global
check returning a shared null context manager, and the `traced`
decorators add one such check per call.

Since the instrumented-but-disabled build *is* the production build,
its regression vs the uninstrumented seed equals (disabled span cost) ×
(spans per step), which this module bounds two ways:

* directly — a disabled `span()` costs well under a microsecond, and a
  medium mesh opens a few hundred spans per ~60 ms step, so the
  structural ceiling is far below the 3% acceptance bound;
* end to end — medium-mesh step time with a live tracer vs disabled,
  interleaved on the same engine, stays within the bound (the enabled
  path is a strict superset of the disabled path's work).

Both kernel tiers are gated: the PR-7 ``fused`` tier added
kernel-category spans after the original 3% bound was set, so the
structural product is re-checked per tier.  The sampling profiler gets
its own, looser bound — at the default rate it wakes ~100×/s to walk
every thread's stack, which must stay under 10% of step time.
"""
import time

import numpy as np

from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.obs.profile import DEFAULT_HZ, SamplingProfiler
from repro.obs.spans import SpanTracer, set_active, span
from repro.physics.initial import balanced_random_state

#: acceptance bound on observation overhead (fraction of step time)
OVERHEAD_BOUND = 0.03

#: acceptance bound with the sampling profiler running at DEFAULT_HZ
PROFILER_BOUND = 0.10

#: kernel tiers the disabled-overhead gate covers (the fused tier's
#: kernel-category spans postdate the original bound)
TIERS = ("reference", "fused")


def _step_time(core, w, nsteps: int) -> float:
    w = core.step(w)  # warmup
    t0 = time.perf_counter()
    for _ in range(nsteps):
        w = core.step(w)
    return (time.perf_counter() - t0) / nsteps


def _medium(kernel_tier: str = "reference"):
    grid = LatLonGrid(nx=72, ny=36, nz=12)
    core = SerialCore(grid, kernel_tier=kernel_tier)
    w = core.pad(balanced_random_state(grid, np.random.default_rng(1234)))
    return core, w


def measure(nsteps: int = 8, repeats: int = 3,
            kernel_tier: str = "reference") -> dict:
    """Interleaved best-of-``repeats`` medium-mesh ms/step, both modes.

    Interleaving (disabled, enabled, disabled, enabled, ...) cancels the
    slow thermal/contention drift that back-to-back blocks pick up.
    """
    core, w = _medium(kernel_tier)
    disabled = enabled = float("inf")
    for _ in range(repeats):
        disabled = min(disabled, _step_time(core, w, nsteps))
        prev = set_active(SpanTracer())
        try:
            enabled = min(enabled, _step_time(core, w, nsteps))
        finally:
            set_active(prev)
    return {
        "kernel_tier": kernel_tier,
        "disabled_ms_per_step": disabled * 1e3,
        "enabled_ms_per_step": enabled * 1e3,
        "enabled_overhead": enabled / disabled - 1.0,
    }


def measure_profiler(nsteps: int = 8, repeats: int = 3,
                     hz: float = DEFAULT_HZ) -> dict:
    """Interleaved ms/step with the sampling profiler off vs on."""
    core, w = _medium()
    off = on = float("inf")
    nsamples = 0
    for _ in range(repeats):
        off = min(off, _step_time(core, w, nsteps))
        with SamplingProfiler(hz=hz) as prof:
            on = min(on, _step_time(core, w, nsteps))
        nsamples += prof.nsamples
    return {
        "hz": hz,
        "off_ms_per_step": off * 1e3,
        "on_ms_per_step": on * 1e3,
        "profiler_overhead": on / off - 1.0,
        "nsamples": nsamples,
    }


def test_disabled_span_is_cheap():
    """A disabled span costs well under a microsecond per call, so even
    thousands of spans per step stay far below the 3% bound."""
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with span("x", "bench"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6, f"disabled span costs {per_call * 1e6:.2f} us"


def test_enabled_overhead_is_bounded():
    """Even *enabled* tracing — a superset of the disabled path's work —
    stays a small fraction of a medium step (loose CI bound; the
    standalone main applies the strict acceptance gate)."""
    m = measure(nsteps=4, repeats=2)
    assert m["enabled_overhead"] < 0.25, m


def disabled_overhead_fraction(kernel_tier: str = "reference") -> dict:
    """The structural disabled-path overhead of one medium-mesh step.

    The disabled build differs from the uninstrumented seed by exactly
    one null-span check per instrumented call, so its regression is
    (per-call disabled cost) × (spans per step) / (step time) — a
    deterministic product, immune to the run-to-run jitter that drowns
    a direct A/B timing on shared machines.
    """
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with span("x", "bench"):
            pass
    per_call = (time.perf_counter() - t0) / n

    core, w = _medium(kernel_tier)
    tracer = SpanTracer()
    prev = set_active(tracer)
    try:
        w = core.step(w)
    finally:
        set_active(prev)
    spans_per_step = len(tracer.spans)

    step_s = min(_step_time(core, w, 4) for _ in range(2))
    return {
        "kernel_tier": kernel_tier,
        "per_call_us": per_call * 1e6,
        "spans_per_step": spans_per_step,
        "step_ms": step_s * 1e3,
        "overhead_fraction": per_call * spans_per_step / step_s,
    }


def test_disabled_overhead_under_bound():
    """The acceptance gate, per kernel tier: instrumentation with
    observation disabled regresses medium-mesh throughput by far less
    than 3% on both the reference and the fused-kernel builds."""
    for tier in TIERS:
        d = disabled_overhead_fraction(tier)
        assert d["overhead_fraction"] < OVERHEAD_BOUND, d


def test_profiler_overhead_under_bound():
    """The sampling profiler at its default rate costs under 10% of a
    medium step (loose CI bound mirrors the tracer test; the standalone
    main applies the gate with more repeats)."""
    m = measure_profiler(nsteps=4, repeats=2)
    assert m["nsamples"] > 0, m
    assert m["profiler_overhead"] < 0.5, m


if __name__ == "__main__":
    for tier in TIERS:
        d = disabled_overhead_fraction(tier)
        print(f"[{tier}] disabled span: {d['per_call_us']:.3f} us/call, "
              f"{d['spans_per_step']} spans per medium step of "
              f"{d['step_ms']:.1f} ms")
        print(f"[{tier}] disabled-path overhead: "
              f"{d['overhead_fraction'] * 100:.3f}% "
              f"of step time (bound {OVERHEAD_BOUND:.0%})")
        assert d["overhead_fraction"] < OVERHEAD_BOUND, d
        m = measure(kernel_tier=tier)
        print(f"[{tier}] A/B timing: "
              f"disabled {m['disabled_ms_per_step']:.3f} ms/step, "
              f"enabled {m['enabled_ms_per_step']:.3f} ms/step "
              f"({m['enabled_overhead'] * 100:+.2f}%)")
    p = measure_profiler()
    print(f"profiler @ {p['hz']:g} Hz: off {p['off_ms_per_step']:.3f} "
          f"ms/step, on {p['on_ms_per_step']:.3f} ms/step "
          f"({p['profiler_overhead'] * 100:+.2f}%, "
          f"{p['nsamples']} samples)")
    assert p["profiler_overhead"] < PROFILER_BOUND, p
    print(f"OK: observation overhead < {OVERHEAD_BOUND:.0%} both tiers; "
          f"profiler overhead < {PROFILER_BOUND:.0%}")
