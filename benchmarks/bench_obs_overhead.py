"""Disabled-overhead gate of the observability layer.

The `repro.obs` span tracer is threaded through every hot path of the
executed core (`step > tendency > operator`, the exchange windows, the
simulated communicator).  The design contract is that a *disabled*
tracer — the default — costs near nothing: `span()` is one module-global
check returning a shared null context manager, and the `traced`
decorators add one such check per call.

Since the instrumented-but-disabled build *is* the production build,
its regression vs the uninstrumented seed equals (disabled span cost) ×
(spans per step), which this module bounds two ways:

* directly — a disabled `span()` costs well under a microsecond, and a
  medium mesh opens a few hundred spans per ~60 ms step, so the
  structural ceiling is far below the 3% acceptance bound;
* end to end — medium-mesh step time with a live tracer vs disabled,
  interleaved on the same engine, stays within the bound (the enabled
  path is a strict superset of the disabled path's work).
"""
import time

import numpy as np

from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.obs.spans import SpanTracer, set_active, span
from repro.physics.initial import balanced_random_state

#: acceptance bound on observation overhead (fraction of step time)
OVERHEAD_BOUND = 0.03


def _step_time(core, w, nsteps: int) -> float:
    w = core.step(w)  # warmup
    t0 = time.perf_counter()
    for _ in range(nsteps):
        w = core.step(w)
    return (time.perf_counter() - t0) / nsteps


def _medium():
    grid = LatLonGrid(nx=72, ny=36, nz=12)
    core = SerialCore(grid)
    w = core.pad(balanced_random_state(grid, np.random.default_rng(1234)))
    return core, w


def measure(nsteps: int = 8, repeats: int = 3) -> dict:
    """Interleaved best-of-``repeats`` medium-mesh ms/step, both modes.

    Interleaving (disabled, enabled, disabled, enabled, ...) cancels the
    slow thermal/contention drift that back-to-back blocks pick up.
    """
    core, w = _medium()
    disabled = enabled = float("inf")
    for _ in range(repeats):
        disabled = min(disabled, _step_time(core, w, nsteps))
        prev = set_active(SpanTracer())
        try:
            enabled = min(enabled, _step_time(core, w, nsteps))
        finally:
            set_active(prev)
    return {
        "disabled_ms_per_step": disabled * 1e3,
        "enabled_ms_per_step": enabled * 1e3,
        "enabled_overhead": enabled / disabled - 1.0,
    }


def test_disabled_span_is_cheap():
    """A disabled span costs well under a microsecond per call, so even
    thousands of spans per step stay far below the 3% bound."""
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with span("x", "bench"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 5e-6, f"disabled span costs {per_call * 1e6:.2f} us"


def test_enabled_overhead_is_bounded():
    """Even *enabled* tracing — a superset of the disabled path's work —
    stays a small fraction of a medium step (loose CI bound; the
    standalone main applies the strict acceptance gate)."""
    m = measure(nsteps=4, repeats=2)
    assert m["enabled_overhead"] < 0.25, m


def disabled_overhead_fraction() -> dict:
    """The structural disabled-path overhead of one medium-mesh step.

    The disabled build differs from the uninstrumented seed by exactly
    one null-span check per instrumented call, so its regression is
    (per-call disabled cost) × (spans per step) / (step time) — a
    deterministic product, immune to the run-to-run jitter that drowns
    a direct A/B timing on shared machines.
    """
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with span("x", "bench"):
            pass
    per_call = (time.perf_counter() - t0) / n

    core, w = _medium()
    tracer = SpanTracer()
    prev = set_active(tracer)
    try:
        w = core.step(w)
    finally:
        set_active(prev)
    spans_per_step = len(tracer.spans)

    step_s = min(_step_time(core, w, 4) for _ in range(2))
    return {
        "per_call_us": per_call * 1e6,
        "spans_per_step": spans_per_step,
        "step_ms": step_s * 1e3,
        "overhead_fraction": per_call * spans_per_step / step_s,
    }


def test_disabled_overhead_under_bound():
    """The acceptance gate: instrumentation with observation disabled
    regresses medium-mesh throughput by far less than 3%."""
    d = disabled_overhead_fraction()
    assert d["overhead_fraction"] < OVERHEAD_BOUND, d


if __name__ == "__main__":
    d = disabled_overhead_fraction()
    print(f"disabled span: {d['per_call_us']:.3f} us/call, "
          f"{d['spans_per_step']} spans per medium step of "
          f"{d['step_ms']:.1f} ms")
    print(f"disabled-path overhead: {d['overhead_fraction'] * 100:.3f}% "
          f"of step time (bound {OVERHEAD_BOUND:.0%})")
    assert d["overhead_fraction"] < OVERHEAD_BOUND, d
    m = measure()
    print(f"A/B timing: disabled {m['disabled_ms_per_step']:.3f} ms/step, "
          f"enabled {m['enabled_ms_per_step']:.3f} ms/step "
          f"({m['enabled_overhead'] * 100:+.2f}%)")
    print(f"OK: observation overhead < {OVERHEAD_BOUND:.0%}")
