"""Ablations of the communication-avoiding design (DESIGN.md Sec. 5).

Executable ablations (simulated cluster):
* CA without the approximate nonlinear iteration — isolates Sec. 4.2.2;
* CA without computation-communication overlap — isolates Sec. 4.3.1.

Model-level ablation:
* halo batching depth sweep — exchanging every r updates trades message
  frequency against redundant halo computation; Algorithm 2's choice
  r = 3M minimizes stencil communication time.
"""
import pytest

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import run_spmd


def _run_variant(approximate_c: bool, overlap: bool):
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
    cfg = DistributedConfig(
        grid=grid, decomp=decomp, params=params, nsteps=3,
        ca_approximate_c=approximate_c, ca_overlap=overlap,
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    return run_spmd(decomp.nranks, ca_rank_program, cfg, state0)


def test_ablation_approximate_iteration(benchmark):
    """Disabling the approximate iteration restores the 3M collective
    frequency and increases collective time."""
    def run_both():
        return _run_variant(True, True), _run_variant(False, True)

    with_approx, without_approx = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    c_with = with_approx.results[0].c_calls
    c_without = without_approx.results[0].c_calls
    print(f"\nC calls: with approximation {c_with}, without {c_without}")
    benchmark.extra_info["c_calls_with"] = c_with
    benchmark.extra_info["c_calls_without"] = c_without
    # 2M + cold start vs 3M per step
    assert c_without == 3 * 1 * 3
    assert c_with == 2 * 1 * 3 + 1
    t_with = max(s.collective_time for s in with_approx.stats)
    t_without = max(s.collective_time for s in without_approx.stats)
    assert t_with < t_without


def test_ablation_overlap(benchmark):
    """Disabling overlap exposes the full exchange latency: the stencil
    waiting time grows, total simulated time grows, numerics unchanged."""
    def run_both():
        return _run_variant(True, True), _run_variant(True, False)

    with_overlap, without_overlap = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    t_with = max(with_overlap.clocks)
    t_without = max(without_overlap.clocks)
    print(f"\nmakespan: overlap {t_with:.6f} s, no-overlap {t_without:.6f} s")
    benchmark.extra_info["makespan_overlap"] = t_with
    benchmark.extra_info["makespan_no_overlap"] = t_without
    assert t_with < t_without
    # identical numerics either way
    a = with_overlap.results[0].state
    b = without_overlap.results[0].state
    assert a.max_difference(b) == 0.0


def test_ablation_halo_batching_depth(benchmark, paper_model):
    """Stencil-communication time vs batching depth at p = 1024: deeper
    batching monotonically reduces projected stencil comm time, with
    Algorithm 2's r = 3M the cheapest."""
    M = paper_model.params.m_iterations
    depths = [1, 3, 2 * M, 3 * M]

    def sweep():
        return {r: paper_model.ca_stencil_time_batched(1024, r) for r in depths}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for r, t in times.items():
        print(f"batch depth {r:>2}: projected stencil comm {t:>10.0f} s")
    benchmark.extra_info["stencil_time_by_depth"] = {
        str(k): round(v) for k, v in times.items()
    }
    assert times[3 * M] < times[3] < times[1]

    with pytest.raises(ValueError):
        paper_model.ca_stencil_time_batched(1024, 0)
