"""Figure 6: time for collective communication.

Shape claims: the X-Y decomposition's Fourier-filter collective is far
more expensive than the Y-Z z-summation (Sec. 4.2.1's reason for choosing
Y-Z), and the communication-avoiding algorithm gains ~1.4x on average over
the Y-Z original by removing one third of the summations (Sec. 4.2.2).
"""
from repro.bench.harness import fig6_collective_time
from repro.perf.model import PAPER_PROC_SWEEP

from conftest import record_series


def test_fig6_collective_time(benchmark, paper_model):
    fig = benchmark(fig6_collective_time, PAPER_PROC_SWEEP, paper_model)
    record_series(benchmark, fig)
    print()
    print(fig.render())

    xy = fig.series["original-xy"]
    yz = fig.series["original-yz"]
    ca = fig.series["ca"]
    # X-Y's filter collective dwarfs Y-Z's summation at every p
    assert all(x > y for x, y in zip(xy, yz))
    # CA speedup vs the Y-Z original: ~1.4x on average (paper: 1.4x)
    ratios = [y / c for y, c in zip(yz, ca)]
    avg = sum(ratios) / len(ratios)
    benchmark.extra_info["ca_vs_yz_speedup_avg"] = round(avg, 3)
    assert 1.25 < avg < 1.55
