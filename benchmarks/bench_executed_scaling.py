"""Executed strong scaling: the real cores over a rank sweep.

Unlike the model-based figure benches, this actually runs the simulated
cluster at 2/4/8 ranks and checks that the logical-clock makespan
decreases with more ranks for the communication-avoiding core (on a
communication-light machine where compute dominates, strong scaling must
be visible even at toy sizes).
"""

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import run_spmd


def _run(program, decomp, grid, params, state0, nsteps=2):
    cfg = DistributedConfig(
        grid=grid, decomp=decomp, params=params, nsteps=nsteps,
    )
    return run_spmd(decomp.nranks, program, cfg, state0)


def test_executed_strong_scaling(benchmark):
    grid = LatLonGrid(nx=64, ny=32, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    decomps = {
        1: Decomposition(64, 32, 8, 1, 1, 1),
        2: Decomposition(64, 32, 8, 1, 2, 1),
        4: Decomposition(64, 32, 8, 1, 2, 2),
        8: Decomposition(64, 32, 8, 1, 4, 2),
    }

    def sweep():
        out = {}
        for p, d in decomps.items():
            res = _run(original_rank_program, d, grid, params, state0)
            out[p] = max(res.clocks)
        return out

    makespans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    base = makespans[1]
    for p, t in makespans.items():
        print(f"p={p}: makespan {t:.6f} s  speedup {base / t:.2f}  "
              f"efficiency {base / t / p:.2f}")
        benchmark.extra_info[f"makespan_p{p}"] = t
    # the original core must strong-scale on the compute-dominated toy
    assert makespans[8] < makespans[2] < makespans[1]


def test_executed_ca_vs_original_scaling(benchmark):
    """At every rank count the executed CA core sends fewer messages and
    spends less logical time waiting on stencil exchanges."""
    grid = LatLonGrid(nx=64, ny=32, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    decomps = [
        Decomposition(64, 32, 8, 1, 2, 1),
        Decomposition(64, 32, 8, 1, 2, 2),
        Decomposition(64, 32, 8, 1, 4, 2),
    ]

    def sweep():
        rows = []
        for d in decomps:
            r_or = _run(original_rank_program, d, grid, params, state0)
            r_ca = _run(ca_rank_program, d, grid, params, state0)
            rows.append(
                (
                    d.nranks,
                    sum(s.p2p_messages_sent for s in r_or.stats),
                    sum(s.p2p_messages_sent for s in r_ca.stats),
                    max(s.tagged_time.get("stencil_comm", 0.0)
                        for s in r_or.stats),
                    max(s.tagged_time.get("stencil_comm", 0.0)
                        for s in r_ca.stats),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for p, m_or, m_ca, t_or, t_ca in rows:
        print(f"p={p}: messages {m_or} -> {m_ca}   "
              f"stencil wait {t_or:.6f} -> {t_ca:.6f} s")
        assert m_ca < m_or
        assert t_ca <= t_or
