"""Figure 1: communication vs computation share of the dycore runtime.

Regenerates the percentages for the original algorithm at paper scale and
checks the figure's message: communication dominates.
"""
from repro.bench.harness import fig1_comm_fraction
from repro.perf.model import PAPER_PROC_SWEEP

from conftest import record_series


def test_fig1_comm_fraction(benchmark, paper_model):
    fig = benchmark(fig1_comm_fraction, PAPER_PROC_SWEEP, paper_model)
    record_series(benchmark, fig)
    print()
    print(fig.render())

    # the figure's claim: communication dominates the runtime
    for alg in ("original-xy", "original-yz"):
        comm = fig.series[f"{alg} comm%"]
        assert all(c > 35.0 for c in comm), alg
    yz = fig.series["original-yz comm%"]
    assert yz == sorted(yz)  # share grows with p
    assert yz[-1] > 90.0     # thoroughly communication-bound at 1024
