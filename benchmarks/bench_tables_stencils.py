"""Tables 1-3: stencil footprints — declared tables + measured probes.

The timed payload is the automatic footprint probing of the real
operators; the assertion is the containment contract of DESIGN.md.
"""
import numpy as np

from repro.constants import ModelParameters
from repro.core.tendencies import TendencyEngine
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.footprint import probe_footprint
from repro.operators.geometry import WorkingGeometry
from repro.operators.smoothing import p1, p2
from repro.operators.stencil_meta import (
    ADAPTATION_RADII,
    TABLE3_SMOOTHING,
    render_table,
    TABLE1_ADAPTATION,
    TABLE2_ADVECTION,
)
from repro.state.variables import ModelState


def _probe_all():
    grid = LatLonGrid(nx=24, ny=16, nz=8)
    sigma = SigmaLevels.uniform(grid.nz)
    geom = WorkingGeometry.build_global(grid, sigma, gy=3, gz=0)
    engine = TendencyEngine(geom, ModelParameters())
    base = ModelState.zeros(geom.shape3d)
    nz_w, ny_w, nx = geom.shape3d
    k, j, i = np.meshgrid(
        np.arange(nz_w), np.arange(ny_w), np.arange(nx), indexing="ij"
    )
    smooth = 0.05 * np.sin(0.4 * i + 0.3 * j + 0.5 * k)
    base.U[:] = 1.0 + smooth
    base.V[:] = 0.5 + 0.5 * smooth
    base.Phi[:] = 2.0 + smooth
    base.psa[:] = 100.0 * smooth[0]
    vd = engine.vertical(base)

    results = {}
    from repro.operators.adaptation import adaptation_tendency

    def op_adapt(arr):
        s = base.copy()
        s.Phi[...] = arr
        return adaptation_tendency(s, vd, geom, engine.params).V

    results["adaptation Phi->V"] = probe_footprint(op_adapt, geom.shape3d)
    results["smoothing P1"] = probe_footprint(
        lambda a: p1(a, 0.1), (4, 10, 12)
    )
    results["smoothing P2"] = probe_footprint(
        lambda a: p2(a, 0.1), (4, 12, 12)
    )
    return results


def test_tables_footprints(benchmark):
    results = benchmark(_probe_all)
    print()
    print(render_table(TABLE1_ADAPTATION, "Table 1 (declared)"))
    print()
    print(render_table(TABLE2_ADVECTION, "Table 2 (declared)"))
    print()
    print(render_table(TABLE3_SMOOTHING, "Table 3 (declared)"))
    print()
    for name, fp in results.items():
        print(f"measured {name}: x={fp.x} y={fp.y} z={fp.z}")
        benchmark.extra_info[name] = {
            "x": list(fp.x), "y": list(fp.y), "z": list(fp.z)
        }

    rx, ry, rz = results["adaptation Phi->V"].radii
    assert rx <= ADAPTATION_RADII[0]
    assert ry <= ADAPTATION_RADII[1]
    assert rz <= ADAPTATION_RADII[2]
    # the smoothing footprints are fully specified: exact match
    p1_entry = TABLE3_SMOOTHING[0]
    assert set(results["smoothing P1"].x) == set(p1_entry.x)
    p2_entry = TABLE3_SMOOTHING[1]
    assert set(results["smoothing P2"].y) == set(p2_entry.y)
