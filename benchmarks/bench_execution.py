"""Executed-core benchmarks: the real algorithms on the simulated cluster.

These time the actual Python implementations (wall clock for the
regeneration work) and record the *logical-clock* communication breakdown,
which is the small-scale ground truth behind the projected figures.
"""
import pytest

from repro.bench.harness import small_scale_measured
from repro.constants import ModelParameters
from repro.core.integrator import SerialCore
from repro.grid.latlon import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state


@pytest.fixture(scope="module")
def serial_setup():
    grid = LatLonGrid(nx=48, ny=24, nz=8)
    params = ModelParameters(dt_adaptation=100.0, dt_advection=300.0)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    return grid, params, state0


def test_serial_step_throughput(benchmark, serial_setup):
    """Wall-clock cost of one full model step of the reference core."""
    grid, params, state0 = serial_setup
    core = SerialCore(grid, params=params, forcing=HeldSuarezForcing())
    w = core.pad(state0)

    def one_step():
        nonlocal w
        w = core.step(w)

    benchmark.pedantic(one_step, rounds=5, iterations=2, warmup_rounds=1)
    benchmark.extra_info["grid"] = f"{grid.nx}x{grid.ny}x{grid.nz}"
    assert core.strip(w).isfinite()


def test_executed_three_algorithm_comparison(benchmark):
    """Run all three algorithms at small scale; record the logical-clock
    breakdown and check the Figure 6/7 orderings on the executed cores."""
    points = benchmark.pedantic(
        small_scale_measured, rounds=1, iterations=1,
        kwargs=dict(nsteps=2, nprocs=4),
    )
    print()
    print(f"{'algorithm':>14} {'stencil[s]':>12} {'collective[s]':>14} "
          f"{'compute[s]':>12} {'messages':>9}")
    for alg, pt in points.items():
        d = pt.diagnostics
        print(f"{alg:>14} {d.stencil_comm_time:>12.6f} "
              f"{d.collective_comm_time:>14.6f} {d.compute_time:>12.6f} "
              f"{d.p2p_messages:>9}")
        benchmark.extra_info[alg] = {
            "stencil_s": d.stencil_comm_time,
            "collective_s": d.collective_comm_time,
            "messages": d.p2p_messages,
        }
    # executed CA beats the executed Y-Z original on stencil comm time
    assert (
        points["ca"].diagnostics.stencil_comm_time
        < points["original-yz"].diagnostics.stencil_comm_time
    )
    # and sends far fewer messages
    assert (
        points["ca"].diagnostics.p2p_messages
        < 0.5 * points["original-yz"].diagnostics.p2p_messages
    )
