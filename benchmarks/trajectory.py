#!/usr/bin/env python
"""Maintain BENCH_trajectory.json: the throughput history across CI runs.

Usage:

    PYTHONPATH=src python benchmarks/trajectory.py \
        --report bench-artifacts/BENCH_2026-08-07.json \
        --history prev-trajectory/BENCH_trajectory.json \
        --baseline benchmarks/baseline/BENCH_baseline.json \
        --out bench-artifacts/BENCH_trajectory.json

Each CI bench run downloads the previous run's trajectory artifact,
appends a condensed entry for the fresh report (per-case steps/s plus
provenance), and re-publishes the file — so the artifact carries the
full throughput history forward run over run.  When no previous
trajectory exists (first run, expired artifact) the history is seeded
from the committed baseline report instead, so the trajectory always
starts from the gated reference point.

The file is append-only and bounded: entries beyond ``--keep`` (default
200) are dropped oldest-first.
"""
from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.wallclock import case_key, load_report  # noqa: E402

TRAJECTORY_SCHEMA = 1


def condense(report: dict, source: str) -> dict:
    """One trajectory entry: provenance + per-case step rates."""
    cases = {}
    for case in report["cases"]:
        if "steps_per_sec" not in case:
            continue
        rec = {"steps_per_sec": case["steps_per_sec"]}
        if case.get("kind") == "kernel_tiers":
            rec["speedup"] = case["speedup"]
            rec["backend"] = case["backend"]
            rec["bit_identical"] = case["bit_identical"]
        cases[case_key(case)] = rec
    machine = report.get("machine", {})
    return {
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": machine.get("git_sha"),
        "hostname": machine.get("hostname"),
        "quick": report.get("quick"),
        "source": source,
        "cases": cases,
    }


def load_history(path: Path | None, baseline: Path | None) -> dict:
    """The prior trajectory, or one seeded from the committed baseline."""
    if path is not None and path.exists():
        history = json.loads(path.read_text())
        if history.get("trajectory_schema") != TRAJECTORY_SCHEMA:
            raise ValueError(
                f"trajectory schema {history.get('trajectory_schema')!r} "
                f"unsupported (expected {TRAJECTORY_SCHEMA})"
            )
        return history
    entries = []
    if baseline is not None and baseline.exists():
        entries.append(condense(load_report(baseline), source="baseline"))
    return {"trajectory_schema": TRAJECTORY_SCHEMA, "entries": entries}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--report", required=True,
                    help="fresh BENCH_*.json report to append")
    ap.add_argument("--history", default=None,
                    help="previous BENCH_trajectory.json (may not exist)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline report seeding a new history")
    ap.add_argument("--out", required=True,
                    help="path of the updated trajectory JSON")
    ap.add_argument("--keep", type=int, default=200,
                    help="max entries retained (oldest dropped first)")
    args = ap.parse_args(argv)

    history = load_history(
        Path(args.history) if args.history else None,
        Path(args.baseline) if args.baseline else None,
    )
    history["entries"].append(condense(load_report(args.report), source="ci"))
    history["entries"] = history["entries"][-args.keep:]

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(history, indent=2) + "\n")
    n = len(history["entries"])
    print(f"wrote {out} ({n} entr{'y' if n == 1 else 'ies'})")
    last = history["entries"][-1]
    for key, rec in sorted(last["cases"].items()):
        extra = (
            f"   x{rec['speedup']:.2f} [{rec['backend']}]"
            if "speedup" in rec else ""
        )
        print(f"  {key:<40} {rec['steps_per_sec']:8.3f} steps/s{extra}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
