#!/usr/bin/env python
"""Maintain BENCH_trajectory.json: the throughput history across CI runs.

Usage:

    PYTHONPATH=src python benchmarks/trajectory.py \
        --report bench-artifacts/BENCH_2026-08-07.json \
        --history prev-trajectory/BENCH_trajectory.json \
        --baseline benchmarks/baseline/BENCH_baseline.json \
        --out bench-artifacts/BENCH_trajectory.json

Each CI bench run downloads the previous run's trajectory artifact,
appends a condensed entry for the fresh report (per-case steps/s plus
provenance), and re-publishes the file — so the artifact carries the
full throughput history forward run over run.  When no previous
trajectory exists (first run, expired artifact) the history is seeded
from the committed baseline report instead, so the trajectory always
starts from the gated reference point.

The file is append-only and bounded: entries beyond ``--keep`` (default
200) are dropped oldest-first.

The trajectory is also *self-guarding*: each fresh entry is scored
against the rolling median of its case history with a MAD-based robust
z-score, on a warn-then-fail ladder — a single moderate slowdown
(z ≤ -WARN_Z) is recorded as a warning in the entry itself; an extreme
slowdown (z ≤ -FAIL_Z), or a moderate one in two consecutive runs,
fails the gate (exit 1).  Median+MAD ignore the occasional noisy-runner
outlier that would wreck a mean/stddev gate, and the ladder stops one
cold-cache run from blocking CI while still catching real regressions
the very next run.
"""
from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.wallclock import case_key, load_report  # noqa: E402

TRAJECTORY_SCHEMA = 1

#: robust z-score ladder: a slowdown beyond WARN_Z is recorded as a
#: warning; beyond FAIL_Z — or beyond WARN_Z in two consecutive runs —
#: the gate fails.  Speedups never gate.
WARN_Z = 3.5
FAIL_Z = 7.0
#: cases need this many prior observations before the gate arms
MIN_HISTORY = 4
#: rolling window of most-recent observations the median/MAD runs over
DEFAULT_WINDOW = 20


def median_mad(values: list[float]) -> tuple[float, float]:
    """Rolling-window centre and robust spread of a case's history."""
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    return med, mad


def robust_z(value: float, values: list[float]) -> float:
    """(value - median) / (1.4826 * MAD); the 1.4826 factor makes the
    MAD consistent with a stddev under normal noise, so the z ladder
    reads in familiar sigma units.  A flat history (MAD = 0) falls back
    to a 1%-of-median scale so identical repeats don't divide by zero.
    """
    med, mad = median_mad(values)
    scale = 1.4826 * mad
    if scale <= 0.0:
        scale = max(abs(med) * 0.01, 1e-12)
    return (value - med) / scale


def detect_anomalies(
    prior_entries: list[dict],
    fresh: dict,
    window: int = DEFAULT_WINDOW,
) -> dict[str, dict]:
    """Score ``fresh`` against the per-case rolling history.

    Returns ``{case_key: {"z", "median", "mad", "severity"}}`` for every
    case slower than the WARN_Z rung.  The fail rung consults the
    *previous* entry's recorded anomalies — that is the ladder: warn
    once, fail when it repeats.
    """
    prev_flagged = set()
    if prior_entries:
        prev_flagged = set(prior_entries[-1].get("anomalies", {}))
    out: dict[str, dict] = {}
    for key, rec in fresh["cases"].items():
        vals = [
            e["cases"][key]["steps_per_sec"]
            for e in prior_entries
            if key in e.get("cases", {})
        ][-window:]
        if len(vals) < MIN_HISTORY:
            continue
        z = robust_z(rec["steps_per_sec"], vals)
        if z > -WARN_Z:
            continue
        severity = (
            "fail" if z <= -FAIL_Z or key in prev_flagged else "warn"
        )
        med, mad = median_mad(vals)
        out[key] = {
            "z": round(z, 2),
            "median": round(med, 4),
            "mad": round(mad, 4),
            "severity": severity,
        }
    return out


def condense(report: dict, source: str) -> dict:
    """One trajectory entry: provenance + per-case step rates."""
    cases = {}
    for case in report["cases"]:
        if "steps_per_sec" not in case:
            continue
        rec = {"steps_per_sec": case["steps_per_sec"]}
        if case.get("kind") == "kernel_tiers":
            rec["speedup"] = case["speedup"]
            rec["backend"] = case["backend"]
            rec["bit_identical"] = case["bit_identical"]
        cases[case_key(case)] = rec
    machine = report.get("machine", {})
    return {
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": machine.get("git_sha"),
        "hostname": machine.get("hostname"),
        "quick": report.get("quick"),
        "source": source,
        "cases": cases,
    }


def valid_history(history) -> bool:
    """Structural check of a parsed trajectory file.

    Guards every shape ``detect_anomalies`` dereferences, so a truncated
    artifact or a schema bump can only ever reseed — never crash CI.
    """
    return (
        isinstance(history, dict)
        and history.get("trajectory_schema") == TRAJECTORY_SCHEMA
        and isinstance(history.get("entries"), list)
        and all(
            isinstance(e, dict)
            and isinstance(e.get("cases"), dict)
            and all(
                isinstance(rec, dict) and "steps_per_sec" in rec
                for rec in e["cases"].values()
            )
            for e in history["entries"]
        )
    )


def load_history(path: Path | None, baseline: Path | None) -> dict:
    """The prior trajectory, or one seeded from the committed baseline.

    A corrupt, truncated or schema-mismatched history file (the artifact
    survives CI runs and tooling upgrades, so both happen) is *not* an
    error: it is reported on stderr and the history reseeds from the
    committed baseline, exactly as if no previous artifact existed.
    """
    if path is not None and path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            print(
                f"warning: trajectory history {path} is unreadable "
                f"({exc}); reseeding from the committed baseline",
                file=sys.stderr,
            )
        else:
            if valid_history(history):
                return history
            print(
                f"warning: trajectory history {path} has an unsupported "
                f"schema or shape (expected trajectory_schema="
                f"{TRAJECTORY_SCHEMA} with list entries); reseeding from "
                "the committed baseline",
                file=sys.stderr,
            )
    entries = []
    if baseline is not None and baseline.exists():
        entries.append(condense(load_report(baseline), source="baseline"))
    return {"trajectory_schema": TRAJECTORY_SCHEMA, "entries": entries}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--report", required=True,
                    help="fresh BENCH_*.json report to append")
    ap.add_argument("--history", default=None,
                    help="previous BENCH_trajectory.json (may not exist)")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline report seeding a new history")
    ap.add_argument("--out", required=True,
                    help="path of the updated trajectory JSON")
    ap.add_argument("--keep", type=int, default=200,
                    help="max entries retained (oldest dropped first)")
    ap.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                    help="rolling median/MAD window (observations)")
    ap.add_argument("--no-gate", action="store_true",
                    help="record anomalies but never fail the run")
    args = ap.parse_args(argv)

    history = load_history(
        Path(args.history) if args.history else None,
        Path(args.baseline) if args.baseline else None,
    )
    entry = condense(load_report(args.report), source="ci")
    anomalies = detect_anomalies(
        history["entries"], entry, window=args.window
    )
    if anomalies:
        entry["anomalies"] = anomalies
    history["entries"].append(entry)
    history["entries"] = history["entries"][-args.keep:]

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(history, indent=2) + "\n")
    n = len(history["entries"])
    print(f"wrote {out} ({n} entr{'y' if n == 1 else 'ies'})")
    last = history["entries"][-1]
    for key, rec in sorted(last["cases"].items()):
        extra = (
            f"   x{rec['speedup']:.2f} [{rec['backend']}]"
            if "speedup" in rec else ""
        )
        flag = anomalies.get(key)
        mark = f"   !! {flag['severity']} z={flag['z']}" if flag else ""
        print(f"  {key:<40} {rec['steps_per_sec']:8.3f} steps/s{extra}{mark}")
    failures = {
        k: a for k, a in anomalies.items() if a["severity"] == "fail"
    }
    for key, a in sorted(anomalies.items()):
        word = "ANOMALY" if a["severity"] == "fail" else "warning"
        print(
            f"{word}: {key} at z={a['z']} vs rolling median "
            f"{a['median']} (MAD {a['mad']})",
            file=sys.stderr,
        )
    if failures and not args.no_gate:
        print(
            f"trajectory gate FAILED for {len(failures)} case(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
