"""Figure 8: total runtime of the dynamical core (10 model years).

Shape claims: CA fastest at every process count; ~54% total reduction vs
X-Y at p = 512 (the paper's "at most" point); ~113,500 s and ~46,300 s
saved vs X-Y and Y-Z at p = 1024.
"""
from repro.bench.harness import fig8_total_runtime
from repro.perf.model import PAPER_PROC_SWEEP

from conftest import record_series


def test_fig8_total_runtime(benchmark, paper_model):
    fig = benchmark(fig8_total_runtime, PAPER_PROC_SWEEP, paper_model)
    record_series(benchmark, fig)
    print()
    print(fig.render())

    xy = fig.series["original-xy"]
    yz = fig.series["original-yz"]
    ca = fig.series["ca"]
    assert all(c < y for c, y in zip(ca, yz))
    assert all(c < x for c, x in zip(ca, xy))

    i512 = PAPER_PROC_SWEEP.index(512)
    reduction_512 = 1.0 - ca[i512] / xy[i512]
    benchmark.extra_info["reduction_vs_xy_at_512"] = round(reduction_512, 3)
    assert abs(reduction_512 - 0.54) < 0.05

    i1024 = PAPER_PROC_SWEEP.index(1024)
    saved_xy = xy[i1024] - ca[i1024]
    saved_yz = yz[i1024] - ca[i1024]
    benchmark.extra_info["saved_vs_xy_1024_s"] = round(saved_xy)
    benchmark.extra_info["saved_vs_yz_1024_s"] = round(saved_yz)
    assert abs(saved_xy - 113_500) / 113_500 < 0.15
    assert abs(saved_yz - 46_300) / 46_300 < 0.15
